"""Staged compilation pipeline: equivalence with the legacy path + caching."""

import numpy as np
import pytest

from repro.calibration import generate_belem_history, generate_device_history, generate_jakarta_history
from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TranspilerError
from repro.simulator import SimulationEngine
from repro.transpiler import (
    Layout,
    PassManager,
    PipelineConfig,
    Target,
    belem_coupling,
    jakarta_coupling,
    legacy_transpile,
    to_basis,
    transpile,
    transpile_batch,
)
from repro.transpiler.pipeline import default_pass_manager, set_default_pass_manager


@pytest.fixture(autouse=True)
def _fresh_default_pass_manager():
    """Isolate every test from the process-wide artifact pool."""
    set_default_pass_manager(None)
    yield
    set_default_pass_manager(None)


def _gate_tuples(circuit: QuantumCircuit):
    return [(g.name, g.qubits, g.param, g.param_ref, g.trainable) for g in circuit.gates]


def assert_equivalent(pipeline_result, legacy_result):
    """The pipeline's output must be indistinguishable from legacy transpile()."""
    assert (
        pipeline_result.initial_layout.logical_to_physical
        == legacy_result.initial_layout.logical_to_physical
    )
    assert pipeline_result.final_mapping == legacy_result.final_mapping
    assert _gate_tuples(pipeline_result.routed.circuit) == _gate_tuples(
        legacy_result.routed.circuit
    )
    assert pipeline_result.ref_physical_qubits == legacy_result.ref_physical_qubits


# ---------------------------------------------------------------------------
# Equivalence on every existing call-site shape
# ---------------------------------------------------------------------------


def test_pipeline_matches_legacy_noise_aware(calibration):
    ansatz = build_qucad_ansatz(4, repeats=2)
    assert_equivalent(
        transpile(ansatz, belem_coupling(), calibration=calibration),
        legacy_transpile(ansatz, belem_coupling(), calibration=calibration),
    )


def test_pipeline_matches_legacy_trivial_layout():
    ansatz = build_qucad_ansatz(4, repeats=1)
    assert_equivalent(
        transpile(ansatz, belem_coupling()),
        legacy_transpile(ansatz, belem_coupling()),
    )


def test_pipeline_matches_legacy_explicit_layout(calibration):
    ansatz = build_qucad_ansatz(3, repeats=1)
    layout = Layout((4, 3, 1))
    assert_equivalent(
        transpile(ansatz, belem_coupling(), calibration=calibration, initial_layout=layout),
        legacy_transpile(
            ansatz, belem_coupling(), calibration=calibration, initial_layout=layout
        ),
    )


def test_pipeline_matches_legacy_on_jakarta():
    history = generate_jakarta_history(3, seed=5)
    ansatz = build_qucad_ansatz(4, repeats=2)
    for snapshot in history:
        assert_equivalent(
            transpile(ansatz, jakarta_coupling(), calibration=snapshot),
            legacy_transpile(ansatz, jakarta_coupling(), calibration=snapshot),
        )


def test_pipeline_matches_legacy_across_drifting_history():
    """Incremental layout reuse must be invisible in the results.

    A 15-day drifting history, one shared PassManager: every day's pipeline
    output must equal a cold legacy transpilation for that day's snapshot,
    whether or not the manager reused yesterday's layout.
    """
    history = generate_belem_history(15, seed=77)
    ansatz = build_qucad_ansatz(4, repeats=2)
    manager = PassManager()
    coupling = belem_coupling()
    for snapshot in history:
        result = manager.compile(ansatz, Target(coupling=coupling, calibration=snapshot))
        assert_equivalent(result, legacy_transpile(ansatz, coupling, calibration=snapshot))
    stats = manager.stats
    assert stats.compile_calls == len(history)
    # On the default (aggressive) drift the provable boundary rarely holds,
    # but fresh searches landing on the same winner must share routing work.
    assert stats.routing_hits > 0


def test_boundary_reuse_triggers_on_calm_drift():
    """Slow drift stays inside the decision boundary → searches are skipped."""
    from repro.calibration import FluctuationConfig

    calm = FluctuationConfig(
        drift_sigma=0.002, mean_reversion=0.5, regime_rate=0.0, spike_rate=0.0
    )
    history = generate_belem_history(10, seed=11, config=calm)
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    coupling = belem_coupling()
    for snapshot in history:
        result = manager.compile(ansatz, Target(coupling=coupling, calibration=snapshot))
        assert_equivalent(result, legacy_transpile(ansatz, coupling, calibration=snapshot))
    assert manager.stats.layout_reuses > 0
    assert manager.stats.layout_runs < len(history)


def test_incremental_reuse_matches_full_search_on_library_device():
    """Same drift equivalence on a device-library topology (capped search)."""
    history = generate_device_history("grid_3x3", 8, seed=3)
    ansatz = build_qucad_ansatz(4, repeats=1)
    config = PipelineConfig(large_device_layout_candidates=200)
    incremental = PassManager(config)
    cold = PassManager(PipelineConfig(incremental=False, large_device_layout_candidates=200))
    from repro.transpiler import get_device_coupling

    coupling = get_device_coupling("grid_3x3")
    for snapshot in history:
        target = Target(coupling=coupling, calibration=snapshot)
        warm_result = incremental.compile(ansatz, target)
        cold.clear()  # force a fresh search every day
        cold_result = cold.compile(ansatz, target)
        assert_equivalent(warm_result, cold_result)


# ---------------------------------------------------------------------------
# Caching behaviour
# ---------------------------------------------------------------------------


def test_result_cache_hit_on_identical_compile(calibration):
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    target = Target(coupling=belem_coupling(), calibration=calibration)
    first = manager.compile(ansatz, target)
    second = manager.compile(ansatz, target)
    assert first is second
    assert manager.stats.result_hits == 1
    assert manager.stats.layout_runs == 1


def test_content_keys_share_artifacts_across_equal_objects(calibration):
    """Independently built but identical circuits/targets share cache entries."""
    manager = PassManager()
    first = manager.compile(
        build_qucad_ansatz(4, repeats=1),
        Target(coupling=belem_coupling(), calibration=calibration),
    )
    second = manager.compile(
        build_qucad_ansatz(4, repeats=1),
        Target(coupling=belem_coupling(), calibration=calibration),
    )
    assert first is second
    assert manager.stats.result_hits == 1


def test_layout_reuse_within_boundary_skips_search_and_routing(calibration):
    """A tiny calibration perturbation stays inside the decision boundary."""
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    coupling = belem_coupling()
    manager.compile(ansatz, Target(coupling=coupling, calibration=calibration))
    assert manager.stats.layout_runs == 1

    vector = calibration.to_vector() * (1.0 + 1e-9)
    from repro.calibration import CalibrationSnapshot

    nudged = CalibrationSnapshot.from_vector(vector, calibration, date="nudged")
    result = manager.compile(ansatz, Target(coupling=coupling, calibration=nudged))
    assert manager.stats.layout_runs == 1  # no second search
    assert manager.stats.layout_reuses == 1
    assert manager.stats.routing_hits == 1
    assert_equivalent(result, legacy_transpile(ansatz, coupling, calibration=nudged))


def test_explicit_layout_result_reused_across_calibration_days():
    """A pinned layout makes compilation calibration-independent."""
    history = generate_belem_history(4, seed=13)
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    layout = Layout((4, 3, 1, 0))
    results = [
        manager.compile(
            ansatz,
            Target(coupling=belem_coupling(), calibration=snapshot),
            initial_layout=layout,
        )
        for snapshot in history
    ]
    assert manager.stats.result_hits == len(history) - 1
    assert all(result is results[0] for result in results)
    # The cached result must not carry a stale day-specific snapshot.
    assert results[0].target is not None
    assert results[0].target.calibration is None


def test_pass_cache_hit_rate_counts_only_avoidable_passes():
    """A trivial-layout result hit avoids one pass (routing), not two."""
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    manager.compile(ansatz, Target(coupling=belem_coupling()))
    manager.compile(ansatz, Target(coupling=belem_coupling()))
    stats = manager.stats
    assert stats.result_hits == 1
    assert stats.routing_runs == 1
    assert stats.pass_cache_hit_rate == pytest.approx(0.5)


def test_incremental_disabled_always_searches(calibration):
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager(PipelineConfig(incremental=False))
    coupling = belem_coupling()
    manager.compile(ansatz, Target(coupling=coupling, calibration=calibration))
    vector = calibration.to_vector() * (1.0 + 1e-9)
    from repro.calibration import CalibrationSnapshot

    nudged = CalibrationSnapshot.from_vector(vector, calibration, date="nudged")
    manager.compile(ansatz, Target(coupling=coupling, calibration=nudged))
    assert manager.stats.layout_runs == 2
    assert manager.stats.layout_reuses == 0


def test_recompiled_identical_circuit_hits_engine_program_cache(calibration):
    """A reused-layout recompilation lands on the engine's fused-program LRU.

    The engine keys programs on content digests, so a structurally identical
    routed circuit produced by a *different* compile call must not recompile.
    """
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    coupling = belem_coupling()
    day0 = manager.compile(ansatz, Target(coupling=coupling, calibration=calibration))

    vector = calibration.to_vector() * (1.0 + 1e-9)
    from repro.calibration import CalibrationSnapshot

    nudged = CalibrationSnapshot.from_vector(vector, calibration, date="nudged")
    day1 = manager.compile(ansatz, Target(coupling=coupling, calibration=nudged))

    engine = SimulationEngine()
    parameters = np.linspace(0.1, 1.0, ansatz.num_parameters)
    engine.compile(day0.to_physical(parameters))
    assert engine.stats.program_builds == 1
    engine.compile(day1.to_physical(parameters))
    assert engine.stats.program_builds == 1
    assert engine.stats.program_hits == 1


def test_compilation_digest_stable_across_equivalent_recompiles(calibration):
    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    coupling = belem_coupling()
    day0 = manager.compile(ansatz, Target(coupling=coupling, calibration=calibration))
    cold = legacy_transpile(ansatz, coupling, calibration=calibration)
    assert day0.compilation_digest() == cold.compilation_digest()
    trivial = legacy_transpile(ansatz, coupling)
    if trivial.initial_layout.logical_to_physical != day0.initial_layout.logical_to_physical:
        assert trivial.compilation_digest() != day0.compilation_digest()


# ---------------------------------------------------------------------------
# transpile_batch
# ---------------------------------------------------------------------------


def test_transpile_batch_broadcasts_one_circuit_over_days():
    history = generate_belem_history(6, seed=9)
    ansatz = build_qucad_ansatz(4, repeats=1)
    coupling = belem_coupling()
    targets = [Target(coupling=coupling, calibration=s) for s in history]
    manager = PassManager()
    results = transpile_batch(ansatz, targets, pass_manager=manager)
    assert len(results) == len(history)
    for result, snapshot in zip(results, history):
        assert_equivalent(result, legacy_transpile(ansatz, coupling, calibration=snapshot))
    # Batch compilation must have deduplicated at least some pass work.
    assert manager.stats.routing_hits + manager.stats.layout_reuses + manager.stats.result_hits > 0


def test_transpile_batch_broadcasts_one_target_over_circuits(calibration):
    circuits = [build_qucad_ansatz(4, repeats=r) for r in (1, 2)]
    target = Target(coupling=belem_coupling(), calibration=calibration)
    results = transpile_batch(circuits, target)
    assert len(results) == 2
    for circuit, result in zip(circuits, results):
        assert_equivalent(
            result, legacy_transpile(circuit, belem_coupling(), calibration=calibration)
        )


def test_transpile_batch_rejects_mismatched_lengths(calibration):
    circuits = [build_qucad_ansatz(4, repeats=1)] * 3
    targets = [Target(coupling=belem_coupling(), calibration=calibration)] * 2
    with pytest.raises(TranspilerError):
        transpile_batch(circuits, targets)


# ---------------------------------------------------------------------------
# Satellite: initial-layout validation (regression)
# ---------------------------------------------------------------------------


def test_explicit_layout_wrong_size_raises_clearly():
    ansatz = build_qucad_ansatz(4, repeats=1)
    with pytest.raises(TranspilerError, match="4"):
        transpile(ansatz, belem_coupling(), initial_layout=Layout((0, 1, 2)))


def test_explicit_layout_out_of_range_raises_clearly():
    ansatz = build_qucad_ansatz(3, repeats=1)
    with pytest.raises(TranspilerError, match="outside device"):
        transpile(ansatz, belem_coupling(), initial_layout=Layout((0, 1, 7)))


def test_legacy_transpile_validates_explicit_layout_too():
    ansatz = build_qucad_ansatz(3, repeats=1)
    with pytest.raises(TranspilerError, match="outside device"):
        legacy_transpile(ansatz, belem_coupling(), initial_layout=Layout((0, 1, 9)))


# ---------------------------------------------------------------------------
# Satellite: to_physical memoisation
# ---------------------------------------------------------------------------


def test_to_physical_memoises_per_parameter_digest(calibration):
    ansatz = build_qucad_ansatz(4, repeats=1)
    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    parameters = np.linspace(0.2, 1.4, ansatz.num_parameters)
    first = transpiled.to_physical(parameters)
    second = transpiled.to_physical(parameters.copy())
    assert first is second  # served from the memo

    fresh = to_basis(transpiled.bind(parameters))
    assert _gate_tuples(first) == _gate_tuples(fresh)  # bit-identical structure
    for cached_gate, fresh_gate in zip(first.gates, fresh.gates):
        if cached_gate.param is None:
            assert fresh_gate.param is None
        else:
            assert cached_gate.param == fresh_gate.param  # exact, not approx

    other = transpiled.to_physical(parameters + 0.5)
    assert other is not first


def test_to_physical_cache_is_bounded(calibration):
    from repro.transpiler.routing import PHYSICAL_CACHE_SIZE

    ansatz = build_qucad_ansatz(2, repeats=1)
    transpiled = transpile(ansatz, belem_coupling(), calibration=calibration)
    for index in range(PHYSICAL_CACHE_SIZE + 10):
        transpiled.to_physical(np.full(ansatz.num_parameters, 1e-3 * index))
    assert len(transpiled.routed._physical_cache) <= PHYSICAL_CACHE_SIZE


def test_to_physical_memo_survives_incremental_recompile(calibration):
    """The memo rides on the shared routed artifact across per-day rebinds."""
    from repro.calibration import CalibrationSnapshot

    ansatz = build_qucad_ansatz(4, repeats=1)
    manager = PassManager()
    coupling = belem_coupling()
    day0 = manager.compile(ansatz, Target(coupling=coupling, calibration=calibration))
    parameters = np.linspace(0.1, 1.2, ansatz.num_parameters)
    first = day0.to_physical(parameters)

    nudged = CalibrationSnapshot.from_vector(
        calibration.to_vector() * (1.0 + 1e-9), calibration, date="nudged"
    )
    day1 = manager.compile(ansatz, Target(coupling=coupling, calibration=nudged))
    assert manager.stats.layout_reuses == 1
    assert day1.routed is day0.routed  # shared artifact
    assert day1.to_physical(parameters) is first  # memo hit, no retranslation


# ---------------------------------------------------------------------------
# compile() argument validation
# ---------------------------------------------------------------------------


def test_compile_requires_target_or_coupling():
    manager = PassManager()
    with pytest.raises(TranspilerError):
        manager.compile(build_qucad_ansatz(2, repeats=1))


def test_compile_rejects_target_plus_coupling(calibration):
    manager = PassManager()
    target = Target(coupling=belem_coupling(), calibration=calibration)
    with pytest.raises(TranspilerError):
        manager.compile(build_qucad_ansatz(2, repeats=1), target, coupling=belem_coupling())


def test_compile_rejects_oversized_circuit():
    manager = PassManager()
    with pytest.raises(TranspilerError):
        manager.compile(QuantumCircuit(6), Target(coupling=belem_coupling()))
