"""Tests for the basis translation pass (compression-level simplification)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TranspilerError
from repro.gates import Gate
from repro.simulator.ops import apply_unitary_statevector
from repro.transpiler import (
    normalize_angle,
    pulse_count_for_angle,
    to_basis,
)
from repro.transpiler.basis import decompose_gate

NATIVE_GATES = {"rz", "sx", "x", "cx"}


def _circuit_unitary(gates, num_qubits):
    states = np.eye(2**num_qubits, dtype=complex)
    for gate in gates:
        states = apply_unitary_statevector(states, gate.matrix(), gate.qubits, num_qubits)
    return states.T


def _equal_up_to_global_phase(a, b, atol=1e-8):
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[index]) < 1e-12:
        return np.allclose(a, 0, atol=atol) and np.allclose(b, 0, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


SINGLE_QUBIT = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg"]
TWO_QUBIT = ["cx", "cz", "cy", "swap"]
ANGLES = [0.0, np.pi / 2, np.pi, 3 * np.pi / 2, 2 * np.pi, 0.33, -1.2, 4.0]


@pytest.mark.parametrize("name", SINGLE_QUBIT)
def test_fixed_single_qubit_decompositions(name):
    gate = Gate(name, (0,))
    decomposed = decompose_gate(gate)
    assert all(g.name in NATIVE_GATES for g in decomposed)
    got = _circuit_unitary(decomposed, 1) if decomposed else np.eye(2, dtype=complex)
    assert _equal_up_to_global_phase(got, _circuit_unitary([gate], 1))


@pytest.mark.parametrize("name", TWO_QUBIT)
def test_fixed_two_qubit_decompositions(name):
    gate = Gate(name, (0, 1))
    decomposed = decompose_gate(gate)
    assert all(g.name in NATIVE_GATES for g in decomposed)
    got = _circuit_unitary(decomposed, 2) if decomposed else np.eye(4, dtype=complex)
    assert _equal_up_to_global_phase(got, _circuit_unitary([gate], 2))


@pytest.mark.parametrize("name", ["rx", "ry", "rz"])
@pytest.mark.parametrize("theta", ANGLES)
def test_rotation_decompositions(name, theta):
    gate = Gate(name, (0,), param=theta)
    decomposed = decompose_gate(gate)
    assert all(g.name in NATIVE_GATES for g in decomposed)
    got = _circuit_unitary(decomposed, 1) if decomposed else np.eye(2, dtype=complex)
    assert _equal_up_to_global_phase(got, _circuit_unitary([gate], 1))


@pytest.mark.parametrize("name", ["crx", "cry", "crz", "cp"])
@pytest.mark.parametrize("theta", ANGLES)
def test_controlled_rotation_decompositions(name, theta):
    gate = Gate(name, (0, 1), param=theta)
    decomposed = decompose_gate(gate)
    assert all(g.name in NATIVE_GATES for g in decomposed)
    got = _circuit_unitary(decomposed, 2) if decomposed else np.eye(4, dtype=complex)
    assert _equal_up_to_global_phase(got, _circuit_unitary([gate], 2))


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["rx", "ry", "crx", "cry", "crz"]),
    theta=st.floats(-4 * np.pi, 4 * np.pi, allow_nan=False),
)
def test_decomposition_equivalence_property(name, theta):
    qubits = (0,) if name in {"rx", "ry"} else (0, 1)
    num_qubits = len(qubits)
    gate = Gate(name, qubits, param=theta)
    decomposed = decompose_gate(gate)
    got = (
        _circuit_unitary(decomposed, num_qubits)
        if decomposed
        else np.eye(2**num_qubits, dtype=complex)
    )
    assert _equal_up_to_global_phase(got, _circuit_unitary([gate], num_qubits))


def test_pulse_count_for_angles():
    assert pulse_count_for_angle(0.0) == 0
    assert pulse_count_for_angle(2 * np.pi) == 0
    assert pulse_count_for_angle(np.pi) == 1
    assert pulse_count_for_angle(np.pi / 2) == 1
    assert pulse_count_for_angle(3 * np.pi / 2) == 1
    assert pulse_count_for_angle(0.4) == 2


def test_controlled_rotation_cx_cost_depends_on_level():
    def cx_count(theta):
        return sum(1 for g in decompose_gate(Gate("cry", (0, 1), param=theta)) if g.name == "cx")

    assert cx_count(0.0) == 0
    assert cx_count(np.pi) == 1
    assert cx_count(np.pi / 2) == 2
    assert cx_count(1.1) == 2


def test_normalize_angle_wraps_into_period():
    assert normalize_angle(2 * np.pi) == pytest.approx(0.0)
    assert normalize_angle(-np.pi / 2) == pytest.approx(3 * np.pi / 2)
    assert normalize_angle(5 * np.pi) == pytest.approx(np.pi)


def test_to_basis_translates_whole_circuit():
    ansatz = build_qucad_ansatz(4, repeats=1)
    params = np.random.default_rng(0).uniform(0, 2 * np.pi, ansatz.num_parameters)
    physical = to_basis(ansatz.bind_parameters(params))
    assert all(g.name in NATIVE_GATES for g in physical)


def test_to_basis_rejects_unbound_parameters():
    ansatz = build_qucad_ansatz(4, repeats=1)
    with pytest.raises(TranspilerError):
        to_basis(ansatz)


def test_compressed_parameters_yield_shorter_basis_circuit():
    ansatz = build_qucad_ansatz(4, repeats=1)
    rng = np.random.default_rng(1)
    generic = rng.uniform(0.3, 1.2, ansatz.num_parameters)
    compressed = np.zeros(ansatz.num_parameters)
    generic_len = len([g for g in to_basis(ansatz.bind_parameters(generic)) if g.name in {"sx", "x", "cx"}])
    compressed_len = len([g for g in to_basis(ansatz.bind_parameters(compressed)) if g.name in {"sx", "x", "cx"}])
    assert compressed_len < generic_len
    assert compressed_len == 0  # every gate vanishes at level 0 on the logical circuit
