"""Tests for layout selection and SWAP routing."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import TranspilerError
from repro.transpiler import (
    Layout,
    belem_coupling,
    linear_coupling,
    noise_aware_layout,
    route_circuit,
    trivial_layout,
)


def test_layout_rejects_duplicate_physical_qubits():
    with pytest.raises(TranspilerError):
        Layout((0, 0, 1))


def test_layout_lookups_and_inverse():
    layout = Layout((2, 0, 1))
    assert layout.physical(0) == 2
    assert layout.as_dict() == {0: 2, 1: 0, 2: 1}
    assert layout.inverse() == {2: 0, 0: 1, 1: 2}


def test_trivial_layout_identity():
    layout = trivial_layout(3, belem_coupling())
    assert layout.logical_to_physical == (0, 1, 2)


def test_trivial_layout_rejects_oversized_circuit():
    with pytest.raises(TranspilerError):
        trivial_layout(6, belem_coupling())


def test_noise_aware_layout_avoids_noisy_region(calibration):
    """The layout should use a connected region and avoid the worst coupler
    when the interaction graph allows it."""
    circuit = QuantumCircuit(2)
    circuit.cry(0.4, 0, 1, param_ref=0, trainable=True)
    layout = noise_aware_layout(circuit, belem_coupling(), calibration)
    pair = tuple(sorted((layout.physical(0), layout.physical(1))))
    errors = {p: calibration.cx_error(*p) for p in [(0, 1), (1, 2), (1, 3), (3, 4)]}
    assert pair in errors
    assert errors[pair] == min(errors.values())


def test_routing_makes_all_two_qubit_gates_adjacent(calibration):
    coupling = belem_coupling()
    ansatz = build_qucad_ansatz(4, repeats=1)
    layout = noise_aware_layout(ansatz, coupling, calibration)
    routed = route_circuit(ansatz, coupling, layout)
    for gate in routed.circuit.gates:
        if gate.num_qubits == 2:
            assert coupling.is_adjacent(*gate.qubits), gate
    assert routed.num_swaps > 0


def test_routing_records_physical_association(calibration):
    coupling = belem_coupling()
    ansatz = build_qucad_ansatz(4, repeats=1)
    routed = route_circuit(ansatz, coupling)
    assert len(routed.gate_physical_qubits) == len(ansatz)
    assert set(routed.ref_physical_qubits) == set(range(ansatz.num_parameters))
    for qubits in routed.ref_physical_qubits.values():
        assert all(0 <= q < coupling.num_qubits for q in qubits)


def test_routing_final_mapping_is_injective():
    coupling = belem_coupling()
    ansatz = build_qucad_ansatz(4, repeats=2)
    routed = route_circuit(ansatz, coupling)
    values = list(routed.final_mapping.values())
    assert len(set(values)) == len(values)
    assert routed.measured_physical_qubits([0, 1]) == [
        routed.final_mapping[0],
        routed.final_mapping[1],
    ]


def test_routing_preserves_param_refs():
    coupling = belem_coupling()
    ansatz = build_qucad_ansatz(4, repeats=1)
    routed = route_circuit(ansatz, coupling)
    original_refs = [g.param_ref for g in ansatz if g.param_ref is not None]
    routed_refs = [g.param_ref for g in routed.circuit if g.param_ref is not None]
    assert routed_refs == original_refs


def test_routing_without_swaps_on_line_topology():
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1).cx(1, 2)
    routed = route_circuit(circuit, linear_coupling(3))
    assert routed.num_swaps == 0
    assert routed.final_mapping == {0: 0, 1: 1, 2: 2}


def test_routing_rejects_layout_size_mismatch():
    circuit = QuantumCircuit(3)
    circuit.cx(0, 2)
    with pytest.raises(TranspilerError):
        route_circuit(circuit, belem_coupling(), Layout((0, 1)))


def test_routed_circuit_is_unitarily_equivalent_on_small_case():
    """Routing only inserts SWAPs, so the routed circuit equals the original
    up to the recorded final qubit permutation."""
    from repro.simulator import StatevectorSimulator

    circuit = QuantumCircuit(3)
    circuit.h(0).cx(0, 2).ry(0.7, 2).cx(2, 1)
    coupling = linear_coupling(3)
    routed = route_circuit(circuit, coupling)
    original = StatevectorSimulator(3).run(circuit).probabilities()[0]
    routed_probs = StatevectorSimulator(3).run(routed.circuit).probabilities()[0]

    # Map routed probabilities back through the final logical->physical mapping.
    mapping = routed.final_mapping
    remapped = np.zeros_like(routed_probs)
    for index in range(len(routed_probs)):
        bits = [(index >> (3 - 1 - q)) & 1 for q in range(3)]
        original_index = 0
        for logical in range(3):
            original_index |= bits[mapping[logical]] << (3 - 1 - logical)
        remapped[original_index] += routed_probs[index]
    assert np.allclose(remapped, original, atol=1e-9)
