"""Behavior tests for the CI protocol gate (``scripts/schema_gate.py``).

The gate has three distinct failure messages — missing document, schema
drift without a version bump, stale document after a bump — and each
remedy is different, so each is pinned separately.  The last test runs
the gate against the *committed* ``docs/schemas/`` set, which is the
exact check CI performs.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.protocol import export_schemas, registered_messages, schema_filename

_SPEC = importlib.util.spec_from_file_location(
    "schema_gate",
    Path(__file__).resolve().parents[2] / "scripts" / "schema_gate.py",
)
schema_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(schema_gate)


@pytest.fixture()
def pinned(tmp_path):
    """A freshly exported schema directory (gate-clean by construction)."""
    export_schemas(tmp_path)
    return tmp_path


def _one_filename() -> str:
    return schema_filename(next(iter(registered_messages())))


def test_freshly_exported_schemas_pass(pinned):
    assert schema_gate.check_schemas(pinned) == []


def test_missing_document_fails_with_export_remedy(pinned):
    (pinned / _one_filename()).unlink()
    failures = schema_gate.check_schemas(pinned)
    assert len(failures) == 1
    assert "missing" in failures[0] and "make schemas" in failures[0]


def test_schema_drift_without_version_bump_is_named(pinned):
    path = pinned / _one_filename()
    document = json.loads(path.read_text())
    document["schema"]["properties"]["sneaky_new_field"] = {"type": "string"}
    document["schema_digest"] = "0" * 32  # what a drifted export would pin
    path.write_text(json.dumps(document))
    failures = schema_gate.check_schemas(pinned)
    assert len(failures) == 1
    assert "drifted without a type_version bump" in failures[0]


def test_stale_document_after_version_bump_is_distinct(pinned):
    path = pinned / _one_filename()
    document = json.loads(path.read_text())
    document["type_version"] = "000"  # committed doc lags the registry
    path.write_text(json.dumps(document))
    failures = schema_gate.check_schemas(pinned)
    assert len(failures) == 1
    assert "stale" in failures[0]


def test_stray_document_is_flagged(pinned):
    (pinned / "abandoned_type.json").write_text("{}")
    failures = schema_gate.check_schemas(pinned)
    assert len(failures) == 1
    assert "no registered message" in failures[0]


def test_committed_schemas_match_the_registry():
    """The in-tree docs/schemas/ set passes — the literal CI check."""
    committed = Path(__file__).resolve().parents[2] / "docs" / "schemas"
    assert committed.is_dir(), "docs/schemas/ is not committed"
    assert schema_gate.check_schemas(committed) == []
