"""Property tests: every registered message survives its codec bit-exactly.

One hypothesis strategy per registered ``type_name``; a completeness test
pins the strategy table to the live registry, so registering a new
message without adding its strategy fails here, not in production.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import (
    MESSAGE_REGISTRY,
    WATCHER_ACTIONS,
    FleetCellResult,
    FleetReport,
    FleetRunManifest,
    ModelServingStats,
    ProtocolError,
    RunRecord,
    ShardDeploy,
    ShardStateOp,
    TelemetrySnapshot,
    WatcherAction,
    content_digest,
    decode,
    encode,
    message_class,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
short_text = st.text(max_size=16)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
)
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), finite, short_text
)
json_dicts = st.dictionaries(names, json_scalars, max_size=3)

_cell_results = st.builds(
    FleetCellResult,
    device=names,
    scenario=names,
    days=st.integers(min_value=0, max_value=365),
    dates=st.lists(st.one_of(st.none(), short_text), max_size=4),
    accuracy=st.lists(probabilities, max_size=4),
    actions=st.dictionaries(st.sampled_from(WATCHER_ACTIONS), st.integers(0, 99), max_size=3),
    boundary_reuses=st.integers(min_value=0, max_value=99),
    versions_published=st.integers(min_value=0, max_value=99),
    compiler=json_dicts,
    runner=json_dicts,
    wall_seconds=finite,
)

_model_stats = st.builds(
    ModelServingStats,
    submitted=st.integers(0, 10_000),
    completed=st.integers(0, 10_000),
    failed=st.integers(0, 10_000),
    cancelled=st.integers(0, 10_000),
    batches=st.integers(0, 10_000),
    batch_size_histogram=st.dictionaries(
        st.integers(1, 64).map(str), st.integers(0, 999), max_size=4
    ),
    mean_batch_size=finite,
    failure_rate=probabilities,
    qps=finite,
    latency_p50_ms=st.one_of(st.none(), finite),
    latency_p99_ms=st.one_of(st.none(), finite),
    versions_served=st.lists(st.integers(0, 99), max_size=4),
)

#: type_name -> strategy generating instances of the registered model.
STRATEGIES: dict[str, st.SearchStrategy] = {
    "run.record": st.builds(
        RunRecord,
        experiment=names,
        kind=short_text,
        index=st.one_of(st.none(), st.integers(min_value=0, max_value=9999)),
        date=st.one_of(st.none(), short_text),
        scenario=st.one_of(st.none(), names),
        accuracy=st.one_of(st.none(), probabilities),
        cache_hit=st.booleans(),
        duration_seconds=finite,
        extra=json_dicts,
        created_at=finite,
    ),
    "fleet.cell.result": _cell_results,
    "fleet.report": st.builds(
        FleetReport,
        dataset_name=names,
        cells=st.lists(_cell_results, max_size=3),
        wall_seconds=finite,
        run_id=st.one_of(st.none(), names),
        resumed_cells=st.integers(min_value=0, max_value=99),
    ),
    "fleet.run.manifest": st.builds(
        FleetRunManifest,
        run_id=names,
        config_digest=names,
        devices=st.lists(names, min_size=1, max_size=3),
        scenarios=st.lists(names, min_size=1, max_size=3),
        dataset_name=names,
        seed=st.integers(min_value=0, max_value=2**31),
        chunk_days=st.integers(min_value=1, max_value=64),
        scale=json_dicts,
        status=st.sampled_from(["running", "complete"]),
        created_at=finite,
    ),
    "serving.watcher.action": st.builds(
        WatcherAction,
        name=names,
        date=st.one_of(st.none(), short_text),
        action=st.sampled_from(WATCHER_ACTIONS),
        version=st.integers(min_value=0, max_value=999),
        digest_changed=st.booleans(),
        parameters_changed=st.booleans(),
        boundary_reused=st.booleans(),
    ),
    "serving.shard.deploy": st.builds(
        ShardDeploy,
        name=names,
        model_digest=names,
        shard_id=st.one_of(st.none(), st.integers(min_value=0, max_value=64)),
        calibration_date=st.one_of(st.none(), short_text),
        has_model_bytes=st.booleans(),
        has_noise_model=st.booleans(),
        has_adapter=st.booleans(),
    ),
    "serving.shard.state_op": st.builds(
        ShardStateOp,
        op=st.sampled_from(["deploy", "observe", "rollback"]),
        name=names,
        date=st.one_of(st.none(), short_text),
        model_digest=st.one_of(st.none(), names),
        attempts=st.integers(min_value=0, max_value=99),
        quarantined=st.booleans(),
    ),
    "serving.telemetry.snapshot": st.builds(
        TelemetrySnapshot,
        models=st.dictionaries(names, _model_stats, max_size=3),
        swaps=st.dictionaries(names, st.integers(0, 999), max_size=3),
        shards=st.dictionaries(
            st.integers(0, 8).map(str), json_dicts, max_size=3
        ),
    ),
}


def test_every_registered_message_has_a_strategy():
    """The strategy table is pinned to the registry — both directions."""
    assert set(STRATEGIES) == set(MESSAGE_REGISTRY)


@pytest.mark.parametrize("type_name", sorted(STRATEGIES))
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_model_json_model_roundtrip_is_bit_identical(type_name, data):
    message = data.draw(STRATEGIES[type_name])
    line = encode(message)
    again = decode(line)
    assert type(again) is type(message)
    assert again == message
    assert encode(again) == line  # byte-identical re-encoding
    assert content_digest(again.to_canonical_dict()) == content_digest(
        message.to_canonical_dict()
    )


@pytest.mark.parametrize("type_name", sorted(STRATEGIES))
def test_registry_resolves_each_type_to_its_model(type_name):
    cls = message_class(type_name)
    assert cls.model_fields["type_name"].default == type_name


def test_decode_rejects_unknown_type_and_missing_envelope():
    with pytest.raises(ProtocolError):
        decode(json.dumps({"type_name": "no.such.type"}))
    with pytest.raises(ProtocolError):
        decode(json.dumps({"experiment": "fig2"}))
    with pytest.raises(ProtocolError):
        decode("not json {")


def test_messages_reject_unknown_fields():
    with pytest.raises(ProtocolError):
        RunRecord.from_payload({"experiment": "fig2", "surprise": 1})


def test_unknown_version_names_the_registered_ones():
    with pytest.raises(ProtocolError, match="001"):
        message_class("run.record", "999")
