"""Resumable fleet runs: the store skips completed cells bit-identically."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.experiments.config import TEST_SCALE
from repro.fleet import FleetHarness
from repro.runtime import RunStore, StoreError

#: Same micro scale as the harness suite: a 1×2 grid replays in seconds.
MICRO_SCALE = TEST_SCALE.with_overrides(
    offline_days=3,
    online_days=2,
    dataset_samples=80,
    train_samples=24,
    eval_samples=12,
    base_train_epochs=1,
)

GRID = {"devices": ["ring_5"], "scenarios": ["calm", "jump"]}


def _harness(store, **overrides) -> FleetHarness:
    options = {**GRID, "scale": MICRO_SCALE, "cell_workers": 1, "store": store}
    options.update(overrides)
    return FleetHarness(**options)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted stored run: (store path, report)."""
    path = tmp_path_factory.mktemp("resume") / "baseline.sqlite"
    report = _harness(path).run()
    return path, report


def test_stored_run_is_durable_and_complete(baseline):
    path, report = baseline
    assert report.run_id is not None and report.resumed_cells == 0
    with RunStore(path) as store:
        assert store.run_ids() == [report.run_id]
        assert store.manifest(report.run_id).status == "complete"
        assert len(store.completed_cells(report.run_id)) == 2
        assert store.count("fleet.report", report.run_id) == 1


def test_run_id_is_deterministic_for_a_configuration(baseline, tmp_path):
    _, report = baseline
    assert _harness(tmp_path / "x.sqlite").run_id == report.run_id
    assert _harness(tmp_path / "x.sqlite", seed=999).run_id != report.run_id


def test_resume_skips_completed_cells_bit_identically(baseline, tmp_path):
    """A partial store resumes to the uninterrupted run's exact report."""
    path, reference = baseline
    partial_path = tmp_path / "partial.sqlite"
    harness = _harness(partial_path)

    # Simulate a run killed after one cell: copy one completed cell (plus
    # the manifest) into a fresh store, exactly what a SIGKILL leaves.
    with RunStore(path) as source, RunStore(partial_path) as partial:
        partial.begin_run(harness._manifest())
        (device, scenario), *_ = [
            (cell.device, cell.scenario)
            for cell in reference.cells
            if cell.scenario == "calm"
        ]
        scenario_obj = next(
            s for s in harness.scenarios if s.name == scenario
        )
        digest = harness._cell_digest(device, scenario_obj)
        cell = source.completed_cells(reference.run_id)[digest]
        partial.put(reference.run_id, cell, digest=digest)

    resumed = _harness(partial_path, resume=reference.run_id).run()
    assert resumed.resumed_cells == 1
    assert json.dumps(resumed.canonical_dict(), sort_keys=True) == json.dumps(
        reference.canonical_dict(), sort_keys=True
    )
    with RunStore(partial_path) as store:
        assert len(store.completed_cells(reference.run_id)) == 2
        assert store.manifest(reference.run_id).status == "complete"


def test_resume_refuses_a_mismatched_configuration(baseline):
    path, reference = baseline
    with pytest.raises(StoreError, match="different configuration"):
        _harness(path, resume=reference.run_id, seed=999).run()


def test_resume_refuses_an_unknown_run(tmp_path):
    store = tmp_path / "empty.sqlite"
    RunStore(store).close()  # create an empty store file
    with pytest.raises(StoreError, match="not in the store"):
        _harness(store, resume="fleet-nope").run()


def test_resume_without_a_store_is_rejected():
    with pytest.raises(ReproError, match="run store"):
        FleetHarness(**GRID, scale=MICRO_SCALE, resume="fleet-abc")
