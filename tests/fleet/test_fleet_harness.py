"""The fleet harness: (device × scenario) replay through runner + watcher."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.experiments.config import TEST_SCALE
from repro.fleet import FleetHarness, FleetReport, WATCHER_ACTIONS, run_fleet
from repro.runtime import load_run_records

#: A micro scale keeping the whole grid replay to a few seconds.
MICRO_SCALE = TEST_SCALE.with_overrides(
    offline_days=3,
    online_days=2,
    dataset_samples=80,
    train_samples=24,
    eval_samples=12,
    base_train_epochs=1,
)


@pytest.fixture(scope="module")
def fleet_report(tmp_path_factory) -> tuple[FleetReport, list]:
    """One shared 1×2 fleet run plus its JSONL run records."""
    records = tmp_path_factory.mktemp("fleet") / "runs.jsonl"
    harness = FleetHarness(
        devices=["ring_5"],
        scenarios=["calm", "jump"],
        scale=MICRO_SCALE,
        record_log=records,
        cell_workers=2,
    )
    return harness.run(), load_run_records(records)


def test_report_covers_every_cell_with_valid_accuracy(fleet_report):
    report, _ = fleet_report
    assert len(report.cells) == 2
    assert {(cell.device, cell.scenario) for cell in report.cells} == {
        ("ring_5", "calm"),
        ("ring_5", "jump"),
    }
    for cell in report.cells:
        assert cell.days == MICRO_SCALE.online_days
        assert len(cell.accuracy) == cell.days
        assert all(0.0 <= value <= 1.0 for value in cell.accuracy)
        assert 0.0 <= cell.mean_accuracy <= 1.0
        assert cell.min_accuracy <= cell.mean_accuracy


def test_watcher_actions_cover_every_online_day(fleet_report):
    report, _ = fleet_report
    for cell in report.cells:
        assert set(cell.actions) == set(WATCHER_ACTIONS)
        assert sum(cell.actions.values()) == cell.days
        assert cell.versions_published >= 1
        assert cell.compiler["compile_calls"] >= 1
        assert 0.0 <= cell.compiler["pass_cache_hit_rate"] <= 1.0


def test_run_records_are_attributable_to_their_scenario(fleet_report):
    report, records = fleet_report
    assert len(records) == sum(cell.days for cell in report.cells)
    scenarios = {record.scenario for record in records}
    assert scenarios == {"calm", "jump"}
    for record in records:
        assert record.experiment == f"fleet/ring_5/{record.scenario}"
        assert record.date is not None


def test_report_serializes_to_json(fleet_report):
    report, _ = fleet_report
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["summary"]["cells"] == 2
    assert payload["summary"]["devices"] == ["ring_5"]
    assert payload["summary"]["scenarios"] == ["calm", "jump"]
    assert set(payload["summary"]["actions"]) == set(WATCHER_ACTIONS)
    for cell in payload["cells"]:
        assert {"device", "scenario", "accuracy", "actions", "compiler", "runner"} <= set(
            cell
        )
        assert cell["runner"]["days_evaluated"] == MICRO_SCALE.online_days


def test_report_formats_a_row_per_cell(fleet_report):
    report, _ = fleet_report
    formatted = report.format()
    assert formatted.count("ring_5") == 2
    assert "calm" in formatted and "jump" in formatted


def test_calm_cell_never_recompiles(fleet_report):
    """The control scenario replays the baseline; drift actions are bugs."""
    report, _ = fleet_report
    calm = report.cell("ring_5", "calm")
    assert calm.actions["recompile"] == 0
    assert calm.actions["readapt"] == 0
    assert calm.actions["refresh"] == calm.days


def test_fleet_is_deterministic_for_a_fixed_seed(fleet_report):
    """A replay of one cell reproduces the shared run's numbers exactly."""
    report, _ = fleet_report
    replay = run_fleet(
        ["ring_5"], ["jump"], scale=MICRO_SCALE, cell_workers=1
    )
    original = report.cell("ring_5", "jump")
    repeated = replay.cell("ring_5", "jump")
    assert np.array_equal(original.accuracy, repeated.accuracy)
    assert original.actions == repeated.actions


def test_harness_rejects_empty_grids():
    with pytest.raises(ReproError):
        FleetHarness([], ["calm"], scale=MICRO_SCALE)
    with pytest.raises(ReproError):
        FleetHarness(["ring_5"], [], scale=MICRO_SCALE)
