"""The swappable kernel registry behind the Backend protocol.

The numpy suite is the reference implementation and is always registered;
the numba suite auto-registers only when numba imports, so its
equivalence tests skip gracefully on numpy-only hosts (the CI numba leg
runs them).  Custom suites register by name and engines resolve them
lazily, which keeps engines picklable for the process pools.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.circuits import build_qucad_ansatz
from repro.exceptions import SimulationError
from repro.simulator import (
    KernelSuite,
    SimulationEngine,
    available_kernels,
    get_kernels,
    numba_available,
    register_kernels,
)
from repro.simulator.kernels import NumpyKernels


def _workload(seed=5, num_qubits=4, batch=6):
    rng = np.random.default_rng(seed)
    ansatz = build_qucad_ansatz(num_qubits, repeats=2)
    theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    dim = 2**num_qubits
    states = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    return ansatz, theta, states


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_kernels()
        assert isinstance(get_kernels("numpy"), NumpyKernels)

    def test_none_resolves_to_numpy(self):
        assert isinstance(get_kernels(None), NumpyKernels)

    def test_unknown_kernel_names_available_suites(self):
        with pytest.raises(SimulationError, match="numpy"):
            get_kernels("no-such-kernel")

    def test_numba_registered_iff_importable(self):
        assert ("numba" in available_kernels()) == numba_available()

    def test_custom_suite_registers_and_serves_engines(self):
        calls = []

        class CountingKernels(NumpyKernels):
            def apply_program(self, program, states):
                calls.append(program.circuit_id)
                return super().apply_program(program, states)

        register_kernels("counting-test", CountingKernels())
        try:
            engine = SimulationEngine(kernel="counting-test")
            ansatz, theta, states = _workload()
            expected = SimulationEngine().run_statevector(
                ansatz, states, parameters=theta
            )
            result = engine.run_statevector(ansatz, states, parameters=theta)
            assert np.array_equal(result, expected)
            assert len(calls) == 1
        finally:
            register_kernels("counting-test", None)
        with pytest.raises(SimulationError):
            get_kernels("counting-test")


class TestEngineSelection:
    def test_unknown_kernel_fails_fast_at_construction(self):
        with pytest.raises(SimulationError):
            SimulationEngine(kernel="no-such-kernel")

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert SimulationEngine().kernel == "numpy"

    def test_engine_with_kernel_stays_picklable(self):
        engine = SimulationEngine(kernel="numpy", dtype="float32")
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.kernel == "numpy"
        assert clone.complex_dtype == np.dtype(np.complex64)
        assert isinstance(clone.kernels, KernelSuite)


class TestGatherPlan:
    """The index plans feeding the jitted loop, pinned without numba.

    ``_gate_index_plan`` is pure numpy, so its correctness — and therefore
    the arithmetic of the gather walk — is verifiable on numpy-only hosts
    by emulating the jitted loop in python.
    """

    def test_plan_walk_matches_reference(self):
        from repro.simulator.kernels import _gate_index_plan

        ansatz, theta, states = _workload(seed=17)
        engine = SimulationEngine()
        program = engine.compile(ansatz, theta)
        reference = engine.run_statevector(ansatz, states, parameters=theta)
        out = states.copy()
        for operation in program.operations:
            rest, offsets = _gate_index_plan(operation.qubits, program.num_qubits)
            gathered = out[:, rest[:, None] + offsets[None, :]]
            mixed = gathered @ operation.matrix.T
            for j, offset in enumerate(offsets):
                out[:, rest + offset] = mixed[:, :, j]
        np.testing.assert_allclose(out, reference, atol=1e-12)


class TestNumbaEquivalence:
    """Numba suite vs the numpy reference; skipped when numba is absent."""

    pytestmark = pytest.mark.skipif(
        not numba_available(), reason="numba is not installed"
    )

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_single_program_walk(self, dtype):
        ansatz, theta, states = _workload()
        reference = SimulationEngine(dtype=dtype).run_statevector(
            ansatz, states, parameters=theta
        )
        jitted = SimulationEngine(dtype=dtype, kernel="numba").run_statevector(
            ansatz, states, parameters=theta
        )
        assert jitted.dtype == reference.dtype
        np.testing.assert_allclose(
            jitted, reference, atol=1e-12 if dtype == "float64" else 1e-6
        )

    def test_multi_program_walk(self):
        rng = np.random.default_rng(9)
        ansatz, _, states = _workload()
        thetas = [
            rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(3)
        ]
        stacked = np.stack([states] * 3)
        reference = SimulationEngine().run_statevector_multi(
            [ansatz] * 3, stacked, thetas
        )
        jitted = SimulationEngine(kernel="numba").run_statevector_multi(
            [ansatz] * 3, stacked, thetas
        )
        np.testing.assert_allclose(jitted, reference, atol=1e-12)

    def test_plan_cache_reuses_compiled_plans(self):
        from repro.simulator.kernels import NumbaKernels

        suite = NumbaKernels()
        engine = SimulationEngine()
        ansatz, theta, states = _workload()
        program = engine.compile(ansatz, theta)
        first = suite.apply_program(program, states)
        second = suite.apply_program(program, states)
        assert np.array_equal(first, second)
        assert len(suite._plans) == 1
