"""Batch/loop equivalence of ``Backend.execute_batch`` on every backend.

The vectorised paths are only allowed to exist because they are
bit-identical to the per-binding loop fallback; these tests pin that
contract (``np.array_equal``, not ``allclose``) for the statevector and
density-matrix backends, and pin seed-reproducibility plus per-binding
stream independence for the trajectory backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.circuits import build_qucad_ansatz
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    StatevectorBackend,
    TrajectoryBackend,
)
from repro.transpiler import belem_coupling, transpile


@pytest.fixture()
def bindings():
    rng = np.random.default_rng(7)
    ansatz = build_qucad_ansatz(4, repeats=1)
    parameter_sets = [
        rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(5)
    ]
    initial = rng.standard_normal((6, 16)) + 1j * rng.standard_normal((6, 16))
    initial /= np.linalg.norm(initial, axis=1, keepdims=True)
    return ansatz, parameter_sets, initial


def test_statevector_batch_bitmatches_loop(bindings):
    ansatz, parameter_sets, initial = bindings
    backend = StatevectorBackend(engine=SimulationEngine())
    batched = backend.execute_batch(ansatz, parameter_sets, initial)
    for parameters, result in zip(parameter_sets, batched):
        reference = backend.execute(ansatz, initial, parameters=parameters)
        assert np.array_equal(result.states, reference.states)


def test_statevector_batch_shared_binding(bindings):
    ansatz, parameter_sets, initial = bindings
    backend = StatevectorBackend(engine=SimulationEngine())
    batched = backend.execute_batch(ansatz, [parameter_sets[0]] * 3, initial)
    reference = backend.execute(ansatz, initial, parameters=parameter_sets[0])
    for result in batched:
        assert np.array_equal(result.states, reference.states)


def test_statevector_batch_heterogeneous_structures_fall_back(bindings):
    ansatz, parameter_sets, initial = bindings
    other = build_qucad_ansatz(4, repeats=2)
    other_parameters = np.linspace(-1.0, 1.0, other.num_parameters)
    backend = StatevectorBackend(engine=SimulationEngine())
    batched = backend.execute_batch(
        [ansatz, other], [parameter_sets[0], other_parameters], initial
    )
    ref_a = backend.execute(ansatz, initial, parameters=parameter_sets[0])
    ref_b = backend.execute(other, initial, parameters=other_parameters)
    assert np.array_equal(batched[0].states, ref_a.states)
    assert np.array_equal(batched[1].states, ref_b.states)


def test_density_batch_bitmatches_loop_across_noise_models(bindings):
    ansatz, parameter_sets, _ = bindings
    history = generate_belem_history(len(parameter_sets), seed=5)
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    transpiled = transpile(ansatz, belem_coupling(), calibration=history[0])
    physical = [transpiled.to_physical(p) for p in parameter_sets]
    backend = DensityMatrixBackend(engine=SimulationEngine())
    batched = backend.execute_batch(physical, noise_models=noise_models, batch=3)
    for circuit, model, result in zip(physical, noise_models, batched):
        reference = backend.execute(circuit, noise_model=model, batch=3)
        assert np.array_equal(result.rho, reference.rho)
        # Per-binding readout confusion must survive the batched path.
        assert np.array_equal(
            result.expectation_z([0, 1]), reference.expectation_z([0, 1])
        )


def test_density_batch_same_parameters_many_days(bindings):
    """The accuracy-over-days shape: one binding, many noise models."""
    ansatz, parameter_sets, _ = bindings
    history = generate_belem_history(4, seed=6)
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    transpiled = transpile(ansatz, belem_coupling(), calibration=history[0])
    physical = transpiled.to_physical(parameter_sets[0])
    backend = DensityMatrixBackend(engine=SimulationEngine())
    batched = backend.execute_batch(physical, noise_models=noise_models, batch=2)
    for model, result in zip(noise_models, batched):
        reference = backend.execute(physical, noise_model=model, batch=2)
        assert np.array_equal(result.rho, reference.rho)


def test_density_batch_noise_free(bindings):
    ansatz, parameter_sets, _ = bindings
    backend = DensityMatrixBackend(engine=SimulationEngine())
    batched = backend.execute_batch(ansatz, parameter_sets, batch=2)
    for parameters, result in zip(parameter_sets, batched):
        reference = backend.execute(ansatz, parameters=parameters, batch=2)
        assert np.array_equal(result.rho, reference.rho)


def test_trajectory_batch_consumes_backend_stream_like_loop(bindings):
    ansatz, parameter_sets, initial = bindings
    batched_backend = TrajectoryBackend(engine=SimulationEngine(), shots=128, seed=99)
    loop_backend = TrajectoryBackend(engine=SimulationEngine(), shots=128, seed=99)
    batched = batched_backend.execute_batch(ansatz, parameter_sets, initial)
    for parameters, result in zip(parameter_sets, batched):
        reference = loop_backend.execute(ansatz, initial, parameters=parameters)
        assert np.array_equal(result.probabilities(), reference.probabilities())
        assert np.array_equal(
            result.expectation_z([0, 1]), reference.expectation_z([0, 1])
        )


def test_trajectory_batch_items_draw_independent_streams(bindings):
    ansatz, parameter_sets, initial = bindings
    backend = TrajectoryBackend(engine=SimulationEngine(), shots=64, seed=3)
    results = backend.execute_batch(ansatz, [parameter_sets[0]] * 2, initial)
    # Same binding, same ideal states — different shot noise per item.
    assert np.array_equal(results[0].states, results[1].states)
    assert not np.array_equal(results[0].probabilities(), results[1].probabilities())


def test_trajectory_batch_explicit_seeds_reproduce(bindings):
    ansatz, parameter_sets, initial = bindings
    backend = TrajectoryBackend(engine=SimulationEngine(), shots=64, seed=3)
    seeds = [11, 22, 33, 44, 55]
    first = backend.execute_batch(ansatz, parameter_sets, initial, seeds=seeds)
    second = backend.execute_batch(ansatz, parameter_sets, initial, seeds=seeds)
    for a, b in zip(first, second):
        assert np.array_equal(a.probabilities(), b.probabilities())


def test_execute_batch_rejects_mismatched_lengths(bindings):
    ansatz, parameter_sets, initial = bindings
    backend = StatevectorBackend(engine=SimulationEngine())
    from repro.exceptions import SimulationError

    with pytest.raises(SimulationError):
        backend.execute_batch(ansatz, parameter_sets, initial, seeds=[1, 2])
