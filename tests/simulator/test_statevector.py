"""Tests for the batched statevector simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulator import StatevectorSimulator


def test_zero_state_shape_and_norm():
    simulator = StatevectorSimulator(3)
    states = simulator.zero_state(batch=4)
    assert states.shape == (4, 8)
    assert np.allclose(states[:, 0], 1.0)


def test_bell_state_probabilities():
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    result = StatevectorSimulator(2).run(circuit)
    probs = result.probabilities()[0]
    assert np.allclose(probs, [0.5, 0, 0, 0.5])


def test_expectation_z_of_bell_state_is_zero():
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    result = StatevectorSimulator(2).run(circuit)
    assert np.allclose(result.expectation_z([0, 1]), 0.0, atol=1e-12)


def test_x_gate_flips_expectation():
    circuit = QuantumCircuit(1)
    circuit.x(0)
    result = StatevectorSimulator(1).run(circuit)
    assert np.allclose(result.expectation_z([0]), -1.0)


def test_run_with_custom_initial_states():
    simulator = StatevectorSimulator(1)
    initial = np.array([[0.0, 1.0]], dtype=complex)
    circuit = QuantumCircuit(1)
    circuit.x(0)
    result = simulator.run(circuit, initial_states=initial)
    assert np.allclose(result.probabilities(), [[1.0, 0.0]])


def test_run_rejects_wrong_qubit_count():
    circuit = QuantumCircuit(2)
    with pytest.raises(SimulationError):
        StatevectorSimulator(3).run(circuit)


def test_run_rejects_wrong_initial_dimension():
    circuit = QuantumCircuit(2)
    with pytest.raises(SimulationError):
        StatevectorSimulator(2).run(circuit, initial_states=np.ones((1, 2)))


def test_unbound_parametric_gate_raises():
    circuit = QuantumCircuit(1)
    circuit.add("ry", [0], param_ref=0, trainable=True)
    with pytest.raises(Exception):
        StatevectorSimulator(1).run(circuit)


def test_apply_feature_rotations_per_sample():
    simulator = StatevectorSimulator(1)
    states = simulator.zero_state(batch=3)
    angles = np.array([0.0, np.pi / 2, np.pi])
    rotated = simulator.apply_feature_rotations(states, "ry", 0, angles)
    probs = np.abs(rotated) ** 2
    assert np.allclose(probs[:, 1], [0.0, 0.5, 1.0], atol=1e-9)


def test_apply_feature_rotations_rejects_two_qubit_gate():
    simulator = StatevectorSimulator(2)
    with pytest.raises(SimulationError):
        simulator.apply_feature_rotations(simulator.zero_state(1), "cry", 0, np.array([0.1]))


def test_norm_preserved_through_deep_circuit():
    rng = np.random.default_rng(3)
    circuit = QuantumCircuit(3)
    for _ in range(20):
        circuit.ry(rng.uniform(0, 2 * np.pi), int(rng.integers(0, 3)))
        circuit.cx(int(rng.integers(0, 2)), 2)
    result = StatevectorSimulator(3).run(circuit, batch=5)
    assert np.allclose(np.linalg.norm(result.states, axis=1), 1.0)
