"""Tests for the noise-channel definitions."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    PhaseDampingChannel,
    PhaseFlipChannel,
    ReadoutError,
)


@pytest.mark.parametrize(
    "channel",
    [
        BitFlipChannel(0.2),
        PhaseFlipChannel(0.3),
        AmplitudeDampingChannel(0.4),
        PhaseDampingChannel(0.25),
    ],
)
def test_kraus_completeness(channel):
    total = sum(k.conj().T @ k for k in channel.kraus_operators())
    assert np.allclose(total, np.eye(2))


@pytest.mark.parametrize("probability", [-0.1, 1.5])
def test_probability_validation(probability):
    with pytest.raises(SimulationError):
        DepolarizingChannel(probability)
    with pytest.raises(SimulationError):
        BitFlipChannel(probability)


def test_depolarizing_qubit_count_validation():
    with pytest.raises(SimulationError):
        DepolarizingChannel(0.1, num_qubits=3)


def test_depolarizing_from_gate_error_single_qubit():
    channel = DepolarizingChannel.from_gate_error(0.01, 1)
    # For d=2 the replace probability is 2x the average infidelity.
    assert channel.probability == pytest.approx(0.02)


def test_depolarizing_from_gate_error_two_qubit():
    channel = DepolarizingChannel.from_gate_error(0.03, 2)
    assert channel.probability == pytest.approx(0.04)
    assert channel.num_qubits == 2


def test_depolarizing_from_gate_error_clips_to_one():
    assert DepolarizingChannel.from_gate_error(0.9, 1).probability == 1.0


def test_depolarizing_apply_requires_matching_qubits():
    channel = DepolarizingChannel(0.1, num_qubits=2)
    rho = np.eye(2, dtype=complex)[None, :, :]
    with pytest.raises(SimulationError):
        channel.apply(rho, [0], 1)


def test_bit_flip_full_probability_flips_state():
    channel = BitFlipChannel(1.0)
    rho = np.zeros((1, 2, 2), dtype=complex)
    rho[0, 0, 0] = 1.0
    flipped = channel.apply(rho, [0], 1)
    assert flipped[0, 1, 1].real == pytest.approx(1.0)


def test_amplitude_damping_relaxes_toward_ground():
    channel = AmplitudeDampingChannel(1.0)
    rho = np.zeros((1, 2, 2), dtype=complex)
    rho[0, 1, 1] = 1.0
    relaxed = channel.apply(rho, [0], 1)
    assert relaxed[0, 0, 0].real == pytest.approx(1.0)


def test_phase_damping_kills_coherence_but_not_populations():
    channel = PhaseDampingChannel(1.0)
    plus = np.full((2, 2), 0.5, dtype=complex)
    out = channel.apply(plus[None, :, :], [0], 1)
    assert out[0, 0, 0].real == pytest.approx(0.5)
    assert abs(out[0, 0, 1]) == pytest.approx(0.0)


def test_readout_error_confusion_matrix_columns_sum_to_one():
    error = ReadoutError(prob_1_given_0=0.1, prob_0_given_1=0.2)
    confusion = error.confusion_matrix()
    assert np.allclose(confusion.sum(axis=0), 1.0)
    assert confusion[1, 0] == pytest.approx(0.1)
    assert confusion[0, 1] == pytest.approx(0.2)


def test_readout_error_symmetric_constructor():
    error = ReadoutError.symmetric(0.05)
    assert error.prob_1_given_0 == error.prob_0_given_1 == 0.05


def test_readout_error_validation():
    with pytest.raises(SimulationError):
        ReadoutError(prob_1_given_0=1.4, prob_0_given_1=0.0)
