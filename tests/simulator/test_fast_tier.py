"""Equivalence-tolerance pins for the float32 fast kernel tier.

The fast tier trades precision for throughput: fused matrices materialise
as ``complex64`` and every walk runs in single precision.  It is only
allowed to exist because it tracks the float64 reference within explicit
tolerances on every backend — these tests pin those tolerances (atol
pins, not loose allclose defaults) across the statevector, density-matrix
and trajectory backends, across devices (belem, jakarta), and across
drift scenarios, plus a hypothesis sweep over random circuits.  A second
group pins that float64 stays the *bit-identical* default: constructing
an engine with ``dtype="float64"`` changes nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    FluctuationConfig,
    generate_belem_history,
    generate_jakarta_history,
)
from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import SimulationError
from repro.qnn import QNNModel
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    StatevectorBackend,
    TrajectoryBackend,
    resolve_precision,
)
from repro.transpiler import belem_coupling, jakarta_coupling, transpile

#: Statevector amplitudes after a fused float32 walk stay within this of
#: the float64 reference (observed ~6e-8 on the paper ansatz; the pin
#: leaves headroom for deeper random circuits).
STATEVECTOR_ATOL = 1e-4
#: Density-matrix entries and readout probabilities accumulate error over
#: the kraus/depolarizing walk; observed ~7e-8, pinned an order looser.
DENSITY_ATOL = 5e-4
#: Z expectations are contractions of the above — same pin.
EXPECTATION_ATOL = 5e-4


def _random_states(rng, batch, num_qubits):
    dim = 2**num_qubits
    states = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


def _random_circuit(rng, num_qubits, num_gates):
    one_q = ["x", "y", "z", "h", "s", "t", "sx", "rx", "ry", "rz", "p"]
    two_q = ["cx", "cz", "cy", "swap", "crx", "cry", "crz", "cp", "rzz"]
    parametric = {"rx", "ry", "rz", "p", "crx", "cry", "crz", "cp", "rzz"}
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.6:
            name = one_q[rng.integers(len(one_q))]
            qubits = [int(rng.integers(num_qubits))]
        else:
            name = two_q[rng.integers(len(two_q))]
            qubits = [int(q) for q in rng.choice(num_qubits, size=2, replace=False)]
        param = float(rng.uniform(-3, 3)) if name in parametric else None
        circuit.add(name, qubits, param=param)
    return circuit


class TestPrecisionResolution:
    def test_aliases(self):
        for alias in ("float64", "complex128", "double"):
            assert resolve_precision(alias) == ("float64", np.dtype(np.complex128))
        for alias in ("float32", "complex64", "single"):
            assert resolve_precision(alias) == ("float32", np.dtype(np.complex64))

    def test_default_is_float64(self):
        assert resolve_precision(None)[0] == "float64"
        assert SimulationEngine().dtype == "float64"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert SimulationEngine().complex_dtype == np.dtype(np.complex64)
        # An explicit argument beats the environment.
        assert SimulationEngine(dtype="float64").dtype == "float64"

    def test_unknown_precision_rejected(self):
        with pytest.raises(SimulationError):
            resolve_precision("float16")


class TestFloat64StaysBitIdentical:
    """``dtype="float64"`` must be indistinguishable from the seed engine."""

    def test_statevector_walk(self):
        rng = np.random.default_rng(11)
        circuit = _random_circuit(rng, 4, 30)
        states = _random_states(rng, 5, 4)
        reference = SimulationEngine().run_statevector(circuit, states)
        explicit = SimulationEngine(dtype="float64").run_statevector(circuit, states)
        assert np.array_equal(reference, explicit)

    def test_density_walk(self):
        rng = np.random.default_rng(12)
        ansatz = build_qucad_ansatz(4, repeats=1)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        history = generate_belem_history(1, seed=4)
        model = NoiseModel.from_calibration(history[0])
        transpiled = transpile(ansatz, belem_coupling(), calibration=history[0])
        physical = transpiled.to_physical(theta)
        reference = DensityMatrixBackend(engine=SimulationEngine()).execute(
            physical, noise_model=model, batch=2
        )
        explicit = DensityMatrixBackend(
            engine=SimulationEngine(dtype="float64")
        ).execute(physical, noise_model=model, batch=2)
        assert np.array_equal(reference.rho, explicit.rho)


class TestFloat32Statevector:
    def test_dtype_and_tolerance_on_paper_ansatz(self):
        rng = np.random.default_rng(21)
        ansatz = build_qucad_ansatz(4, repeats=2)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        states = _random_states(rng, 8, 4)
        exact = SimulationEngine().run_statevector(ansatz, states, parameters=theta)
        fast = SimulationEngine(dtype="float32").run_statevector(
            ansatz, states.astype(np.complex64), parameters=theta
        )
        assert fast.dtype == np.complex64
        np.testing.assert_allclose(fast, exact, atol=STATEVECTOR_ATOL)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_qubits=st.integers(2, 5),
        num_gates=st.integers(1, 60),
    )
    def test_random_circuits_track_float64(self, seed, num_qubits, num_gates):
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng, num_qubits, num_gates)
        states = _random_states(rng, 3, num_qubits)
        exact = SimulationEngine().run_statevector(circuit, states)
        fast = SimulationEngine(dtype="float32").run_statevector(circuit, states)
        assert fast.dtype == np.complex64
        np.testing.assert_allclose(fast, exact, atol=STATEVECTOR_ATOL)

    def test_backend_expectations(self):
        rng = np.random.default_rng(22)
        ansatz = build_qucad_ansatz(4, repeats=2)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        states = _random_states(rng, 6, 4)
        exact = StatevectorBackend(engine=SimulationEngine()).execute(
            ansatz, states, parameters=theta
        )
        fast = StatevectorBackend(engine=SimulationEngine(dtype="float32")).execute(
            ansatz, states, parameters=theta
        )
        np.testing.assert_allclose(
            fast.expectation_z([0, 1]),
            exact.expectation_z([0, 1]),
            atol=EXPECTATION_ATOL,
        )


@pytest.mark.parametrize(
    "generate_history, coupling",
    [
        (generate_belem_history, belem_coupling),
        (generate_jakarta_history, jakarta_coupling),
    ],
    ids=["belem", "jakarta"],
)
class TestFloat32Density:
    def test_noisy_walk_tracks_float64(self, generate_history, coupling):
        rng = np.random.default_rng(31)
        ansatz = build_qucad_ansatz(4, repeats=1)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        history = generate_history(1, seed=9)
        model = NoiseModel.from_calibration(history[0])
        transpiled = transpile(ansatz, coupling(), calibration=history[0])
        physical = transpiled.to_physical(theta)
        exact = DensityMatrixBackend(engine=SimulationEngine()).execute(
            physical, noise_model=model, batch=2
        )
        fast = DensityMatrixBackend(engine=SimulationEngine(dtype="float32")).execute(
            physical, noise_model=model, batch=2
        )
        assert fast.rho.dtype == np.complex64
        np.testing.assert_allclose(fast.rho, exact.rho, atol=DENSITY_ATOL)
        measured = transpiled.measured_physical_qubits([0, 1])
        np.testing.assert_allclose(
            fast.expectation_z(measured),
            exact.expectation_z(measured),
            atol=EXPECTATION_ATOL,
        )

    def test_drift_scenario_days(self, generate_history, coupling):
        """Tolerance holds across a drifting multi-day history."""
        rng = np.random.default_rng(32)
        ansatz = build_qucad_ansatz(4, repeats=1)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        config = FluctuationConfig(drift_sigma=0.06)
        history = generate_history(3, seed=13, config=config)
        models = [NoiseModel.from_calibration(s) for s in history]
        transpiled = transpile(ansatz, coupling(), calibration=history[0])
        physical = transpiled.to_physical(theta)
        exact_backend = DensityMatrixBackend(engine=SimulationEngine())
        fast_backend = DensityMatrixBackend(engine=SimulationEngine(dtype="float32"))
        exact = exact_backend.execute_batch(physical, noise_models=models, batch=2)
        fast = fast_backend.execute_batch(physical, noise_models=models, batch=2)
        for exact_day, fast_day in zip(exact, fast):
            assert fast_day.rho.dtype == np.complex64
            np.testing.assert_allclose(
                fast_day.rho, exact_day.rho, atol=DENSITY_ATOL
            )


class TestFloat32Trajectory:
    def test_sampled_expectations_match_at_equal_seed(self):
        """Same seed, same shots: the sampled counts agree across tiers.

        Shot sampling draws from probabilities that differ only at the
        float32 epsilon, so with a shared stream the multinomial draws
        coincide and the sampled expectations are equal (the probabilities
        themselves are pinned to the tolerance band).
        """
        rng = np.random.default_rng(41)
        ansatz = build_qucad_ansatz(4, repeats=2)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        states = _random_states(rng, 4, 4)
        exact = TrajectoryBackend(engine=SimulationEngine(), shots=4096, seed=7).execute(
            ansatz, states, parameters=theta
        )
        fast = TrajectoryBackend(
            engine=SimulationEngine(dtype="float32"), shots=4096, seed=7
        ).execute(ansatz, states, parameters=theta)
        np.testing.assert_allclose(
            fast.probabilities(), exact.probabilities(), atol=DENSITY_ATOL
        )
        np.testing.assert_allclose(
            fast.expectation_z([0, 1]),
            exact.expectation_z([0, 1]),
            atol=EXPECTATION_ATOL,
        )


class TestFloat32Model:
    def test_ideal_forward_tracks_float64(self):
        model = QNNModel.create(4, 16, 4, repeats=2, seed=9)
        rng = np.random.default_rng(42)
        features = rng.uniform(0.0, 1.0, size=(10, 16))
        exact = model.forward_ideal(
            features, backend=StatevectorBackend(engine=SimulationEngine())
        )
        fast = model.forward_ideal(
            features,
            backend=StatevectorBackend(engine=SimulationEngine(dtype="float32")),
        )
        np.testing.assert_allclose(fast, exact, atol=model.logit_scale * EXPECTATION_ATOL)
