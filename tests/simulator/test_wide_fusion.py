"""Cross-path gate fusion: folding diagonal/monomial gates into wider blocks.

At ``fusion_width >= 3`` the sweep absorbs diagonal and monomial gates
(rz, cz, crz, cx, swap, ...) across fast-path boundaries, merging the
dense blocks on either side into one wider fused matrix when the union
still fits the width budget.  The tier is opt-in: the default width of 2
keeps the seed's plans (and its bit-identical ≤2-qubit embedding paths)
untouched, so these tests pin three things — the default is unchanged,
width 3 strictly shrinks the plans of the paper circuits, and the wide
plans stay numerically equivalent to the unfused walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import SimulationError
from repro.gates import CROSS_PATH_GATES, DIAGONAL_GATES, MONOMIAL_GATES
from repro.simulator import SimulationEngine, StatevectorSimulator, build_fusion_plan


def _random_states(rng, batch, num_qubits):
    dim = 2**num_qubits
    states = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


class TestGateClasses:
    def test_cross_path_union(self):
        assert CROSS_PATH_GATES == DIAGONAL_GATES | MONOMIAL_GATES
        assert "rz" in DIAGONAL_GATES and "cz" in DIAGONAL_GATES
        assert "cx" in MONOMIAL_GATES and "swap" in MONOMIAL_GATES
        # Dense rotations must never ride the cross-path branch.
        assert "ry" not in CROSS_PATH_GATES and "h" not in CROSS_PATH_GATES


class TestPlanShrinkage:
    @pytest.mark.parametrize("num_qubits,repeats", [(4, 1), (4, 2), (5, 2)])
    def test_width3_strictly_shrinks_paper_ansatz(self, num_qubits, repeats):
        ansatz = build_qucad_ansatz(num_qubits, repeats=repeats)
        narrow = build_fusion_plan(ansatz, max_width=2)
        wide = build_fusion_plan(ansatz, max_width=3)
        assert wide.fused_gate_count < narrow.fused_gate_count
        assert wide.source_gate_count == narrow.source_gate_count

    def test_default_width_keeps_seed_plans(self):
        ansatz = build_qucad_ansatz(4, repeats=2)
        assert (
            build_fusion_plan(ansatz).fused_gate_count
            == build_fusion_plan(ansatz, max_width=2).fused_gate_count
        )
        engine = SimulationEngine()
        assert engine.fusion_width == 2

    def test_width_below_two_rejected(self):
        ansatz = build_qucad_ansatz(4, repeats=1)
        with pytest.raises(SimulationError):
            build_fusion_plan(ansatz, max_width=1)
        with pytest.raises(SimulationError):
            SimulationEngine(fusion_width=1)

    def test_env_var_sets_engine_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION_WIDTH", "3")
        assert SimulationEngine().fusion_width == 3


class TestWidePlanEquivalence:
    def test_paper_ansatz_matches_unfused(self):
        rng = np.random.default_rng(23)
        for num_qubits, repeats in [(4, 2), (5, 1)]:
            ansatz = build_qucad_ansatz(num_qubits, repeats=repeats)
            theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
            states = _random_states(rng, 5, num_qubits)
            expected = StatevectorSimulator(num_qubits).run(
                ansatz.bind_parameters(theta), initial_states=states
            ).states
            wide = SimulationEngine(fusion_width=3).run_statevector(
                ansatz, states, parameters=theta
            )
            np.testing.assert_allclose(wide, expected, atol=1e-10)

    def test_random_cross_path_heavy_circuits(self):
        """Circuits stacked with diagonal/monomial gates between dense blocks."""
        rng = np.random.default_rng(29)
        dense = ["h", "rx", "ry", "sx"]
        cross = ["z", "s", "t", "rz", "p", "cz", "crz", "cp", "rzz", "x", "cx", "swap"]
        parametric = {"rx", "ry", "rz", "p", "crz", "cp", "rzz"}
        for num_qubits in (3, 4, 5):
            for trial in range(4):
                circuit = QuantumCircuit(num_qubits)
                for _ in range(50):
                    pool = dense if rng.random() < 0.4 else cross
                    name = pool[rng.integers(len(pool))]
                    if name in ("cz", "crz", "cp", "rzz", "cx", "swap"):
                        qubits = [
                            int(q)
                            for q in rng.choice(num_qubits, size=2, replace=False)
                        ]
                    else:
                        qubits = [int(rng.integers(num_qubits))]
                    param = (
                        float(rng.uniform(-3, 3)) if name in parametric else None
                    )
                    circuit.add(name, qubits, param=param)
                states = _random_states(rng, 4, num_qubits)
                expected = StatevectorSimulator(num_qubits).run(
                    circuit, initial_states=states
                ).states
                for width in (3, 4):
                    wide = SimulationEngine(fusion_width=width).run_statevector(
                        circuit, states
                    )
                    np.testing.assert_allclose(wide, expected, atol=1e-10)

    def test_wide_blocks_exist_and_stay_within_budget(self):
        ansatz = build_qucad_ansatz(5, repeats=2)
        plan = build_fusion_plan(ansatz, max_width=3)
        widths = [len(block.qubits) for block in plan.blocks]
        assert max(widths) == 3
        assert all(width <= 3 for width in widths)
