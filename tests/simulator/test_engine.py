"""Tests for the compiled-circuit engine and the unified Backend API."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, build_qucad_ansatz
from repro.exceptions import SimulationError
from repro.gates.matrices import rotation_stack
from repro.simulator import (
    DensityMatrixBackend,
    DensityMatrixSimulator,
    SimulationEngine,
    StatevectorBackend,
    StatevectorSimulator,
    TrajectoryBackend,
    build_fusion_plan,
    circuit_structure_digest,
    default_engine,
    get_execution_backend,
    parameter_digest,
)
from repro.simulator.noise_model import NoiseModel


def _random_states(rng, batch, num_qubits):
    dim = 2**num_qubits
    states = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


def _random_circuit(rng, num_qubits, num_gates):
    one_q = ["x", "y", "z", "h", "s", "t", "sx", "rx", "ry", "rz", "p"]
    two_q = ["cx", "cz", "cy", "swap", "crx", "cry", "crz", "cp", "rzz"]
    parametric = {"rx", "ry", "rz", "p", "crx", "cry", "crz", "cp", "rzz"}
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.6:
            name = one_q[rng.integers(len(one_q))]
            qubits = [int(rng.integers(num_qubits))]
        else:
            name = two_q[rng.integers(len(two_q))]
            qubits = [int(q) for q in rng.choice(num_qubits, size=2, replace=False)]
        param = float(rng.uniform(-3, 3)) if name in parametric else None
        circuit.add(name, qubits, param=param)
    return circuit


# ---------------------------------------------------------------------------
# Fusion correctness
# ---------------------------------------------------------------------------


class TestFusionCorrectness:
    def test_fused_equals_unfused_on_random_circuits(self):
        rng = np.random.default_rng(7)
        engine = SimulationEngine()
        for num_qubits in (2, 3, 4, 5):
            simulator = StatevectorSimulator(num_qubits)
            for _ in range(5):
                circuit = _random_circuit(rng, num_qubits, 40)
                states = _random_states(rng, 6, num_qubits)
                expected = simulator.run(circuit, initial_states=states).states
                fused = engine.run_statevector(circuit, states)
                np.testing.assert_allclose(fused, expected, atol=1e-10)

    def test_fused_equals_unfused_on_qucad_ansatz(self):
        rng = np.random.default_rng(3)
        ansatz = build_qucad_ansatz(4, 2)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        states = _random_states(rng, 5, 4)
        expected = StatevectorSimulator(4).run(
            ansatz.bind_parameters(theta), initial_states=states
        ).states
        fused = SimulationEngine().run_statevector(ansatz, states, parameters=theta)
        np.testing.assert_allclose(fused, expected, atol=1e-10)

    def test_fusion_reduces_gate_count(self):
        ansatz = build_qucad_ansatz(4, 2)
        plan = build_fusion_plan(ansatz)
        assert plan.source_gate_count == len(ansatz.gates)
        assert plan.fused_gate_count < plan.source_gate_count / 2
        # Every source gate lands in exactly one block.
        covered = sorted(i for b in plan.blocks for i in b.gate_indices)
        assert covered == list(range(len(ansatz.gates)))

    def test_single_qubit_run_merges_to_one_block(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).ry(0.3, 0).rz(0.5, 0).x(0)
        plan = build_fusion_plan(circuit)
        assert plan.fused_gate_count == 1
        assert plan.blocks[0].qubits == (0,)

    def test_two_qubit_run_contracts_to_one_block(self):
        # cx(0,1), cx(1,0) and interleaved 1q gates all share support {0,1}.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).ry(0.2, 0).cx(1, 0).rz(0.4, 1).cz(0, 1)
        plan = build_fusion_plan(circuit)
        assert plan.fused_gate_count == 1
        rng = np.random.default_rng(0)
        states = _random_states(rng, 4, 2)
        expected = StatevectorSimulator(2).run(circuit, initial_states=states).states
        fused = SimulationEngine().run_statevector(circuit, states)
        np.testing.assert_allclose(fused, expected, atol=1e-12)

    def test_conflicting_supports_stay_ordered(self):
        # cx(0,1) then cx(1,2) share wire 1 and must not be reordered.
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).ry(0.7, 1).cx(0, 1)
        rng = np.random.default_rng(1)
        states = _random_states(rng, 4, 3)
        expected = StatevectorSimulator(3).run(circuit, initial_states=states).states
        fused = SimulationEngine().run_statevector(circuit, states)
        np.testing.assert_allclose(fused, expected, atol=1e-12)

    def test_fusion_disabled_engine_matches(self):
        rng = np.random.default_rng(11)
        circuit = _random_circuit(rng, 3, 30)
        states = _random_states(rng, 4, 3)
        engine = SimulationEngine(fusion=False)
        plan = engine.plan_for(circuit)[1]
        assert plan.fused_gate_count == len(circuit.gates)
        expected = StatevectorSimulator(3).run(circuit, initial_states=states).states
        np.testing.assert_allclose(
            engine.run_statevector(circuit, states), expected, atol=1e-12
        )


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


class TestCaching:
    def test_program_cache_hit_on_repeat(self):
        rng = np.random.default_rng(5)
        ansatz = build_qucad_ansatz(4, 1)
        theta = rng.uniform(-1, 1, ansatz.num_parameters)
        engine = SimulationEngine()
        states = _random_states(rng, 3, 4)
        engine.run_statevector(ansatz, states, parameters=theta)
        assert engine.stats.program_builds == 1
        engine.run_statevector(ansatz, states, parameters=theta)
        engine.run_statevector(ansatz, states, parameters=theta)
        assert engine.stats.program_builds == 1
        assert engine.stats.program_hits == 2
        assert engine.stats.plan_builds == 1

    def test_parameter_change_invalidates_program_but_not_plan(self):
        rng = np.random.default_rng(6)
        ansatz = build_qucad_ansatz(4, 1)
        theta_a = rng.uniform(-1, 1, ansatz.num_parameters)
        theta_b = theta_a.copy()
        theta_b[0] += 0.25
        engine = SimulationEngine()
        states = _random_states(rng, 3, 4)
        out_a = engine.run_statevector(ansatz, states, parameters=theta_a)
        out_b = engine.run_statevector(ansatz, states, parameters=theta_b)
        assert engine.stats.program_builds == 2  # distinct bindings compile twice
        assert engine.stats.plan_builds == 1  # structure plan is shared
        assert np.abs(out_a - out_b).max() > 1e-6  # genuinely different programs
        # Re-running either binding now hits the cache.
        engine.run_statevector(ansatz, states, parameters=theta_a)
        assert engine.stats.program_hits == 1

    def test_digests_distinguish_structure_and_binding(self):
        ansatz = build_qucad_ansatz(4, 1)
        other = build_qucad_ansatz(4, 2)
        assert circuit_structure_digest(ansatz) != circuit_structure_digest(other)
        theta = np.linspace(-1, 1, ansatz.num_parameters)
        assert parameter_digest(ansatz, theta) != parameter_digest(ansatz, theta + 0.1)
        assert parameter_digest(ansatz, theta) == parameter_digest(ansatz, theta.copy())

    def test_lru_eviction(self):
        rng = np.random.default_rng(8)
        ansatz = build_qucad_ansatz(2, 1)
        engine = SimulationEngine(max_programs=2)
        states = _random_states(rng, 2, 2)
        thetas = [rng.uniform(-1, 1, ansatz.num_parameters) for _ in range(3)]
        for theta in thetas:
            engine.run_statevector(ansatz, states, parameters=theta)
        assert engine.cache_sizes()["programs"] == 2
        # The oldest binding was evicted and recompiles.
        engine.run_statevector(ansatz, states, parameters=thetas[0])
        assert engine.stats.program_builds == 4

    def test_bound_circuit_cache(self):
        rng = np.random.default_rng(9)
        ansatz = build_qucad_ansatz(3, 1)
        theta = rng.uniform(-1, 1, ansatz.num_parameters)
        engine = SimulationEngine()
        first = engine.bound_circuit(ansatz, theta)
        second = engine.bound_circuit(ansatz, theta)
        assert first is second
        assert engine.stats.bound_builds == 1
        assert engine.stats.bound_hits == 1

    def test_clear_resets_caches(self):
        rng = np.random.default_rng(10)
        ansatz = build_qucad_ansatz(2, 1)
        engine = SimulationEngine()
        theta = rng.uniform(-1, 1, ansatz.num_parameters)
        engine.run_statevector(ansatz, _random_states(rng, 2, 2), parameters=theta)
        assert engine.cache_sizes()["programs"] == 1
        engine.clear()
        assert engine.cache_sizes() == {"plans": 0, "programs": 0, "bound": 0}


# ---------------------------------------------------------------------------
# Backend parity
# ---------------------------------------------------------------------------


class TestBackends:
    def test_statevector_density_parity_ideal(self):
        rng = np.random.default_rng(12)
        ansatz = build_qucad_ansatz(3, 1)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        states = _random_states(rng, 4, 3)
        engine = SimulationEngine()
        sv = StatevectorBackend(engine=engine)
        dm = DensityMatrixBackend(engine=engine)
        sv_result = sv.execute(ansatz, states, parameters=theta)
        rho0 = DensityMatrixSimulator.from_statevectors(states)
        dm_result = dm.execute(ansatz, rho0, parameters=theta)
        np.testing.assert_allclose(
            dm_result.probabilities(apply_readout_error=False),
            sv_result.probabilities(),
            atol=1e-10,
        )
        np.testing.assert_allclose(
            dm_result.expectation_z([0, 1], apply_readout_error=False),
            sv_result.expectation_z([0, 1]),
            atol=1e-10,
        )

    def test_density_backend_noisy_matches_simulator(self):
        rng = np.random.default_rng(13)
        ansatz = build_qucad_ansatz(3, 1)
        bound = ansatz.bind_parameters(rng.uniform(-1, 1, ansatz.num_parameters))
        noise = NoiseModel(
            num_qubits=3,
            single_qubit_error={q: 0.01 for q in range(3)},
            two_qubit_error={(q, (q + 1) % 3): 0.03 for q in range(3)},
        )
        expected = DensityMatrixSimulator(3).run(bound, noise_model=noise, batch=2).rho
        result = DensityMatrixBackend().execute(bound, noise_model=noise, batch=2)
        np.testing.assert_allclose(result.rho, expected, atol=1e-12)

    def test_trajectory_backend_converges_to_exact(self):
        rng = np.random.default_rng(14)
        ansatz = build_qucad_ansatz(3, 1)
        theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        engine = SimulationEngine()
        exact = StatevectorBackend(engine=engine).execute(
            ansatz, parameters=theta, batch=2
        )
        sampled = TrajectoryBackend(engine=engine, shots=200_000, seed=1).execute(
            ansatz, parameters=theta, batch=2
        )
        np.testing.assert_allclose(
            sampled.expectation_z([0, 1]), exact.expectation_z([0, 1]), atol=0.02
        )
        # Sampled frequencies are cached: identical across queries.
        np.testing.assert_array_equal(sampled.probabilities(), sampled.probabilities())

    def test_backend_list_dispatch(self):
        rng = np.random.default_rng(15)
        ansatz = build_qucad_ansatz(2, 1)
        thetas = rng.uniform(-1, 1, ansatz.num_parameters)
        backend = StatevectorBackend()
        circuits = [ansatz.bind_parameters(thetas), ansatz.bind_parameters(thetas + 0.5)]
        results = backend.execute(circuits, batch=2)
        assert isinstance(results, list) and len(results) == 2
        assert np.abs(results[0].states - results[1].states).max() > 1e-6

    def test_statevector_backend_rejects_noise(self):
        ansatz = build_qucad_ansatz(2, 1).bind_parameters(
            np.zeros(build_qucad_ansatz(2, 1).num_parameters)
        )
        noise = NoiseModel.ideal(2)
        with pytest.raises(SimulationError):
            StatevectorBackend().execute(ansatz, noise_model=noise)

    def test_get_execution_backend_aliases(self):
        engine = SimulationEngine()
        assert get_execution_backend("ideal", engine=engine).name == "statevector"
        assert get_execution_backend("noisy", engine=engine).name == "density_matrix"
        assert (
            get_execution_backend("sampled", engine=engine, shots=16).name
            == "trajectory"
        )
        with pytest.raises(SimulationError):
            get_execution_backend("quantum_annealer")

    def test_trajectory_backend_draws_fresh_noise_per_call(self):
        # A backend-level seed must give each execute an independent shot
        # realization while keeping the whole sequence reproducible.
        ansatz = build_qucad_ansatz(2, 1)
        theta = np.linspace(-1.0, 1.0, ansatz.num_parameters)
        backend_a = TrajectoryBackend(shots=64, seed=5)
        first = backend_a.execute(ansatz, parameters=theta, batch=1).probabilities()
        second = backend_a.execute(ansatz, parameters=theta, batch=1).probabilities()
        assert np.abs(first - second).max() > 0  # fresh noise per call
        backend_b = TrajectoryBackend(shots=64, seed=5)
        replay = backend_b.execute(ansatz, parameters=theta, batch=1).probabilities()
        np.testing.assert_array_equal(first, replay)  # sequence reproducible

    def test_trainable_flag_distinguishes_cached_bound_circuits(self):
        # Two circuits with identical structure and angles but different
        # trainable flags must not share adjoint gradient behaviour.
        from repro.qnn.gradients import adjoint_gradient, z_diagonal

        engine = SimulationEngine()
        trainable = QuantumCircuit(2)
        trainable.add("ry", [0], param_ref=0, trainable=True)
        trainable.add("ry", [1], param_ref=1, trainable=True)
        frozen = QuantumCircuit(2)
        frozen.add("ry", [0], param_ref=0, trainable=True)
        frozen.add("ry", [1], param_ref=1, trainable=False)
        theta = np.array([0.4, -0.7])
        initial = StatevectorSimulator(2).zero_state(batch=1)
        diagonals = z_diagonal(1, 2)[None, :]
        grad_trainable, _ = adjoint_gradient(
            trainable, theta, initial, diagonals, engine=engine
        )
        grad_frozen, _ = adjoint_gradient(
            frozen, theta, initial, diagonals, engine=engine
        )
        assert abs(grad_trainable[1]) > 1e-6
        assert grad_frozen[1] == 0.0

    def test_default_engine_is_shared(self):
        from repro.simulator import default_statevector_backend

        assert default_statevector_backend().engine is default_engine()


# ---------------------------------------------------------------------------
# Vectorised feature rotations (bugfix regression)
# ---------------------------------------------------------------------------


class TestRotationStack:
    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    def test_stack_matches_scalar_factories(self, name):
        from repro.gates import GATE_REGISTRY

        angles = np.linspace(-2 * np.pi, 2 * np.pi, 17)
        stack = rotation_stack(name, angles)
        expected = np.stack([GATE_REGISTRY[name].matrix_fn(float(a)) for a in angles])
        np.testing.assert_allclose(stack, expected, atol=1e-14)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            rotation_stack("cx", np.zeros(3))

    def test_apply_feature_rotations_statevector(self):
        rng = np.random.default_rng(16)
        simulator = StatevectorSimulator(2)
        states = _random_states(rng, 8, 2)
        angles = rng.uniform(-np.pi, np.pi, 8)
        out = simulator.apply_feature_rotations(states, "ry", 1, angles)
        # Reference: per-sample loop.
        from repro.gates import GATE_REGISTRY
        from repro.simulator import ops

        matrices = np.stack([GATE_REGISTRY["ry"].matrix_fn(float(a)) for a in angles])
        expected = ops.apply_unitary_statevector(states, matrices, [1], 2)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_apply_feature_rotations_density(self):
        rng = np.random.default_rng(17)
        simulator = DensityMatrixSimulator(2)
        states = _random_states(rng, 4, 2)
        rho = DensityMatrixSimulator.from_statevectors(states)
        angles = rng.uniform(-np.pi, np.pi, 4)
        out = simulator.apply_feature_rotations(rho, "rx", 0, angles)
        from repro.gates import GATE_REGISTRY
        from repro.simulator import ops

        matrices = np.stack([GATE_REGISTRY["rx"].matrix_fn(float(a)) for a in angles])
        expected = ops.apply_unitary_density(rho, matrices, [0], 2)
        np.testing.assert_allclose(out, expected, atol=1e-12)
