"""Tests for the low-level batched tensor operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.gates import matrices as mat
from repro.simulator import ops


def _random_state(num_qubits: int, batch: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
        size=(batch, 2**num_qubits)
    )
    return state / np.linalg.norm(state, axis=1, keepdims=True)


def _random_density(num_qubits: int, batch: int, seed: int = 0) -> np.ndarray:
    states = _random_state(num_qubits, batch, seed)
    return np.einsum("bi,bj->bij", states, states.conj())


def test_apply_unitary_statevector_preserves_norm():
    states = _random_state(3, 5)
    out = ops.apply_unitary_statevector(states, mat.H, [1], 3)
    assert np.allclose(np.linalg.norm(out, axis=1), 1.0)


def test_apply_unitary_statevector_matches_full_kron():
    states = _random_state(2, 3)
    expected = states @ np.kron(mat.I2, mat.X).T
    out = ops.apply_unitary_statevector(states, mat.X, [1], 2)
    assert np.allclose(out, expected)


def test_apply_two_qubit_unitary_on_reversed_qubits():
    # CX with control=1, target=0 should differ from control=0, target=1.
    state = np.zeros((1, 4), dtype=complex)
    state[0, 1] = 1.0  # |01>: qubit 1 is set
    out = ops.apply_unitary_statevector(state, mat.CX, [1, 0], 2)
    assert np.allclose(np.abs(out[0]), np.eye(4)[3])


def test_apply_unitary_batched_matrices():
    states = _random_state(1, 4)
    thetas = np.array([0.1, 0.5, 1.0, 2.0])
    matrices = np.stack([mat.ry(t) for t in thetas])
    out = ops.apply_unitary_statevector(states, matrices, [0], 1)
    for i, theta in enumerate(thetas):
        assert np.allclose(out[i], mat.ry(theta) @ states[i])


def test_apply_unitary_rejects_bad_qubits():
    states = _random_state(2, 1)
    with pytest.raises(SimulationError):
        ops.apply_unitary_statevector(states, mat.H, [2], 2)
    with pytest.raises(SimulationError):
        ops.apply_unitary_statevector(states, mat.CX, [0, 0], 2)


def test_density_and_statevector_agree_on_unitaries():
    states = _random_state(3, 2)
    rho = np.einsum("bi,bj->bij", states, states.conj())
    evolved_states = ops.apply_unitary_statevector(states, mat.CX, [0, 2], 3)
    evolved_rho = ops.apply_unitary_density(rho, mat.CX, [0, 2], 3)
    expected = np.einsum("bi,bj->bij", evolved_states, evolved_states.conj())
    assert np.allclose(evolved_rho, expected)


def test_kraus_identity_channel_is_noop():
    rho = _random_density(2, 3)
    out = ops.apply_kraus_density(rho, [np.eye(2)], [1], 2)
    assert np.allclose(out, rho)


def test_kraus_preserves_trace_for_valid_channel():
    rho = _random_density(2, 3)
    gamma = 0.3
    kraus = [
        np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex),
        np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex),
    ]
    out = ops.apply_kraus_density(rho, kraus, [0], 2)
    assert np.allclose(np.einsum("bii->b", out), 1.0)


def test_depolarizing_zero_probability_is_noop():
    rho = _random_density(2, 2)
    assert np.allclose(ops.apply_depolarizing_density(rho, 0.0, [0], 2), rho)


def test_depolarizing_full_probability_gives_maximally_mixed_marginal():
    rho = _random_density(1, 2)
    out = ops.apply_depolarizing_density(rho, 1.0, [0], 1)
    assert np.allclose(out, np.broadcast_to(np.eye(2) / 2, out.shape))


def test_depolarizing_preserves_trace_and_hermiticity():
    rho = _random_density(3, 2)
    out = ops.apply_depolarizing_density(rho, 0.37, [0, 2], 3)
    assert np.allclose(np.einsum("bii->b", out), 1.0)
    assert np.allclose(out, np.conj(np.transpose(out, (0, 2, 1))))


def test_depolarizing_rejects_bad_probability():
    rho = _random_density(1, 1)
    with pytest.raises(SimulationError):
        ops.apply_depolarizing_density(rho, 1.5, [0], 1)


def test_partial_trace_of_product_state():
    zero = np.array([1, 0], dtype=complex)
    plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
    state = np.kron(zero, plus)[None, :]
    rho = np.einsum("bi,bj->bij", state, state.conj())
    reduced = ops.partial_trace(rho, [1], 2)
    assert np.allclose(reduced[0], np.outer(plus, plus.conj()))


def test_partial_trace_of_bell_state_is_maximally_mixed():
    bell = np.zeros((1, 4), dtype=complex)
    bell[0, 0] = bell[0, 3] = 1 / np.sqrt(2)
    rho = np.einsum("bi,bj->bij", bell, bell.conj())
    reduced = ops.partial_trace(rho, [0], 2)
    assert np.allclose(reduced[0], np.eye(2) / 2)


def test_expectation_z_signs():
    probs = np.zeros((2, 4))
    probs[0, 0] = 1.0  # |00>
    probs[1, 3] = 1.0  # |11>
    assert np.allclose(ops.expectation_z(probs, 0, 2), [1.0, -1.0])
    assert np.allclose(ops.expectation_z(probs, 1, 2), [1.0, -1.0])


def test_readout_confusion_mixes_probabilities():
    probs = np.array([[1.0, 0.0]])
    confusion = {0: np.array([[0.9, 0.2], [0.1, 0.8]])}
    out = ops.apply_readout_confusion(probs, confusion, 1)
    assert np.allclose(out, [[0.9, 0.1]])
    assert np.allclose(out.sum(axis=1), 1.0)


def test_readout_confusion_rejects_bad_qubit():
    with pytest.raises(SimulationError):
        ops.apply_readout_confusion(np.ones((1, 2)), {3: np.eye(2)}, 1)


def test_marginal_probabilities_sum_to_one():
    probs = np.full((2, 8), 1 / 8)
    marginal = ops.marginal_probabilities(probs, [0, 2], 3)
    assert marginal.shape == (2, 4)
    assert np.allclose(marginal.sum(axis=1), 1.0)


def test_sample_counts_sums_to_shots():
    rng = np.random.default_rng(1)
    probs = np.array([[0.5, 0.25, 0.25, 0.0], [0.1, 0.2, 0.3, 0.4]])
    counts = ops.sample_counts(probs, 100, rng)
    assert counts.shape == probs.shape
    assert np.all(counts.sum(axis=1) == 100)
    assert counts[0, 3] == 0


def test_sample_counts_requires_positive_shots():
    with pytest.raises(SimulationError):
        ops.sample_counts(np.array([[1.0]]), 0, np.random.default_rng(0))


@settings(max_examples=25, deadline=None)
@given(
    theta=st.floats(-2 * np.pi, 2 * np.pi),
    qubit=st.integers(0, 2),
    probability=st.floats(0.0, 1.0),
)
def test_noisy_single_qubit_expectations_stay_physical(theta, qubit, probability):
    """Property: expectations remain in [-1, 1] under any rotation + noise."""
    states = _random_state(3, 2, seed=7)
    rho = np.einsum("bi,bj->bij", states, states.conj())
    rho = ops.apply_unitary_density(rho, mat.ry(theta), [qubit], 3)
    rho = ops.apply_depolarizing_density(rho, probability, [qubit], 3)
    probs = ops.density_probabilities(rho)
    values = ops.expectation_z(probs, qubit, 3)
    assert np.all(values <= 1.0 + 1e-9)
    assert np.all(values >= -1.0 - 1e-9)
