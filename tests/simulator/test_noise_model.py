"""Tests for the calibration-derived noise model."""

import numpy as np
import pytest

from repro.calibration import CalibrationSnapshot
from repro.exceptions import SimulationError
from repro.gates import Gate
from repro.simulator import NoiseModel, VIRTUAL_GATES


@pytest.fixture()
def snapshot():
    return CalibrationSnapshot(
        num_qubits=3,
        single_qubit_error={0: 1e-3, 1: 2e-3, 2: 3e-3},
        two_qubit_error={(0, 1): 0.01, (1, 2): 0.02},
        readout_error={0: 0.03, 1: 0.04, 2: 0.05},
    )


def test_from_calibration_copies_rates(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    assert model.single_qubit_error[2] == pytest.approx(3e-3)
    assert model.two_qubit_error[(1, 2)] == pytest.approx(0.02)
    assert model.readout_error[0].prob_1_given_0 == pytest.approx(0.03)


def test_ideal_model_is_noiseless():
    model = NoiseModel.ideal(4)
    assert model.is_noiseless()
    assert model.channel_for_gate(Gate("x", (0,))) is None


def test_virtual_gates_have_zero_error(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    for name in ("rz", "id"):
        assert name in VIRTUAL_GATES
        gate = Gate(name, (1,), param=0.5) if name == "rz" else Gate(name, (1,))
        assert model.gate_error_rate(gate) == 0.0


def test_two_qubit_lookup_works_both_orientations(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    assert model.gate_error_rate(Gate("cx", (0, 1))) == pytest.approx(0.01)
    assert model.gate_error_rate(Gate("cx", (1, 0))) == pytest.approx(0.01)


def test_unknown_qubit_has_zero_error(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    assert model.gate_error_rate(Gate("x", (2,))) == pytest.approx(3e-3)
    assert model.gate_error_rate(Gate("cx", (0, 2))) == 0.0


def test_channel_for_gate_converts_to_depolarizing(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    channel = model.channel_for_gate(Gate("cx", (1, 2)))
    assert channel is not None
    assert channel.num_qubits == 2
    assert channel.probability == pytest.approx(0.02 * 4 / 3)


def test_readout_confusion_only_for_listed_qubits(snapshot):
    model = NoiseModel.from_calibration(snapshot)
    confusion = model.readout_confusion()
    assert set(confusion) == {0, 1, 2}
    assert confusion[1].shape == (2, 2)


def test_scaled_multiplies_and_clips(snapshot):
    model = NoiseModel.from_calibration(snapshot).scaled(100.0)
    assert model.two_qubit_error[(0, 1)] == 1.0
    assert model.readout_error[2].prob_1_given_0 == 1.0
    with pytest.raises(SimulationError):
        model.scaled(-1.0)


def test_mean_error_summary(snapshot):
    summary = NoiseModel.from_calibration(snapshot).mean_error_summary()
    assert summary["mean_single_qubit_error"] == pytest.approx(2e-3)
    assert summary["mean_two_qubit_error"] == pytest.approx(0.015)
    assert summary["mean_readout_error"] == pytest.approx(0.04)
