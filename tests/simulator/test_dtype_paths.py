"""Every backend path must honour the engine's precision tier.

PR 8 swept the hardwired ``dtype=complex`` / implicit float64 allocations
out of the simulator; this regression pins the output dtype of each
execution path under both tiers so a future allocation can't silently
promote a float32 walk back to double precision (NEP 50 makes that easy:
one float64 coefficient array upcasts the whole batch).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.circuits import build_qucad_ansatz
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    StatevectorBackend,
    TrajectoryBackend,
)
from repro.transpiler import belem_coupling, transpile

COMPLEX_OF = {"float64": np.dtype(np.complex128), "float32": np.dtype(np.complex64)}
REAL_OF = {"float64": np.dtype(np.float64), "float32": np.dtype(np.float32)}


@pytest.fixture(params=["float64", "float32"])
def tier(request):
    return request.param


@pytest.fixture()
def workload():
    rng = np.random.default_rng(3)
    ansatz = build_qucad_ansatz(4, repeats=1)
    theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    thetas = [rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(3)]
    return ansatz, theta, thetas


def test_statevector_paths(tier, workload):
    ansatz, theta, thetas = workload
    backend = StatevectorBackend(engine=SimulationEngine(dtype=tier))
    result = backend.execute(ansatz, parameters=theta)
    assert result.states.dtype == COMPLEX_OF[tier]
    assert result.probabilities().dtype == REAL_OF[tier]
    for item in backend.execute_batch(ansatz, thetas):
        assert item.states.dtype == COMPLEX_OF[tier]


def test_simulator_fallback_paths(tier, workload):
    """The unfused simulator walk (fusion off) follows the tier too."""
    ansatz, theta, _ = workload
    backend = StatevectorBackend(engine=SimulationEngine(fusion=False, dtype=tier))
    result = backend.execute(ansatz, parameters=theta)
    assert result.states.dtype == COMPLEX_OF[tier]


def test_density_paths(tier, workload):
    ansatz, theta, thetas = workload
    backend = DensityMatrixBackend(engine=SimulationEngine(dtype=tier))
    result = backend.execute(ansatz, parameters=theta, batch=2)
    assert result.rho.dtype == COMPLEX_OF[tier]
    assert result.probabilities().dtype == REAL_OF[tier]
    for item in backend.execute_batch(ansatz, thetas, batch=2):
        assert item.rho.dtype == COMPLEX_OF[tier]


def test_noisy_density_paths(tier, workload):
    """Kraus, depolarizing and readout-confusion channels preserve the tier."""
    ansatz, theta, thetas = workload
    history = generate_belem_history(len(thetas), seed=8)
    models = [NoiseModel.from_calibration(s) for s in history]
    transpiled = transpile(ansatz, belem_coupling(), calibration=history[0])
    physical = transpiled.to_physical(theta)
    backend = DensityMatrixBackend(engine=SimulationEngine(dtype=tier))
    result = backend.execute(physical, noise_model=models[0], batch=2)
    assert result.rho.dtype == COMPLEX_OF[tier]
    measured = transpiled.measured_physical_qubits([0, 1])
    assert result.probabilities().dtype == REAL_OF[tier]
    assert result.expectation_z(measured).dtype == REAL_OF[tier]
    batched = backend.execute_batch(
        [transpiled.to_physical(p) for p in thetas], noise_models=models, batch=2
    )
    for item in batched:
        assert item.rho.dtype == COMPLEX_OF[tier]


def test_trajectory_paths(tier, workload):
    ansatz, theta, thetas = workload
    backend = TrajectoryBackend(engine=SimulationEngine(dtype=tier), shots=64, seed=2)
    result = backend.execute(ansatz, parameters=theta)
    assert result.states.dtype == COMPLEX_OF[tier]
    for item in backend.execute_batch(ansatz, thetas):
        assert item.states.dtype == COMPLEX_OF[tier]


def test_multi_group_walks(tier, workload):
    ansatz, _, thetas = workload
    engine = SimulationEngine(dtype=tier)
    rng = np.random.default_rng(5)
    states = rng.normal(size=(len(thetas), 4, 16)) + 1j * rng.normal(
        size=(len(thetas), 4, 16)
    )
    states /= np.linalg.norm(states, axis=-1, keepdims=True)
    evolved = engine.run_statevector_multi([ansatz] * len(thetas), states, thetas)
    assert evolved.dtype == COMPLEX_OF[tier]


def test_compiled_programs_materialise_in_tier(tier, workload):
    ansatz, theta, _ = workload
    engine = SimulationEngine(dtype=tier)
    program = engine.compile(ansatz, theta)
    for operation in program.operations:
        assert operation.matrix.dtype == COMPLEX_OF[tier]
