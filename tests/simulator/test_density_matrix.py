"""Tests for the density-matrix simulator and its noise handling."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulator import (
    DensityMatrixSimulator,
    NoiseModel,
    ReadoutError,
    StatevectorSimulator,
)
from repro.utils.linalg import is_density_matrix


def _bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    return circuit


def test_noiseless_density_matches_statevector():
    circuit = _bell_circuit()
    sv = StatevectorSimulator(2).run(circuit).probabilities()
    dm = DensityMatrixSimulator(2).run(circuit).probabilities(apply_readout_error=False)
    assert np.allclose(sv, dm)


def test_result_states_are_valid_density_matrices():
    circuit = _bell_circuit()
    noise = NoiseModel(
        num_qubits=2,
        single_qubit_error={0: 0.01, 1: 0.02},
        two_qubit_error={(0, 1): 0.05},
        readout_error={0: ReadoutError.symmetric(0.03)},
    )
    result = DensityMatrixSimulator(2).run(circuit, noise_model=noise, batch=3)
    for rho in result.rho:
        assert is_density_matrix(rho)


def test_noise_shrinks_expectations():
    circuit = QuantumCircuit(1)
    circuit.x(0)
    clean = DensityMatrixSimulator(1).run(circuit)
    noisy = DensityMatrixSimulator(1).run(
        circuit, noise_model=NoiseModel(num_qubits=1, single_qubit_error={0: 0.2})
    )
    clean_z = clean.expectation_z([0])[0, 0]
    noisy_z = noisy.expectation_z([0])[0, 0]
    assert clean_z == pytest.approx(-1.0)
    assert noisy_z > clean_z  # shrunk toward zero
    assert noisy_z < 0.0


def test_readout_error_shrinks_expectations_further():
    circuit = QuantumCircuit(1)
    circuit.x(0)
    noise = NoiseModel(
        num_qubits=1, readout_error={0: ReadoutError.symmetric(0.1)}
    )
    result = DensityMatrixSimulator(1).run(circuit, noise_model=noise)
    with_readout = result.expectation_z([0])[0, 0]
    without_readout = result.expectation_z([0], apply_readout_error=False)[0, 0]
    assert without_readout == pytest.approx(-1.0)
    assert with_readout == pytest.approx(-0.8)


def test_virtual_rz_gates_accumulate_no_noise():
    circuit = QuantumCircuit(1)
    for _ in range(50):
        circuit.rz(0.3, 0)
    noise = NoiseModel(num_qubits=1, single_qubit_error={0: 0.05})
    result = DensityMatrixSimulator(1).run(circuit, noise_model=noise)
    # |0> is an eigenstate of RZ; with no pulse noise the state is untouched.
    assert result.probabilities(apply_readout_error=False)[0, 0] == pytest.approx(1.0)


def test_two_qubit_noise_uses_coupler_rate():
    circuit = QuantumCircuit(2)
    circuit.cx(0, 1)
    noise = NoiseModel(num_qubits=2, two_qubit_error={(0, 1): 1.0})
    result = DensityMatrixSimulator(2).run(circuit, noise_model=noise)
    # A fully depolarizing CX leaves the two qubits maximally mixed.
    assert np.allclose(result.rho[0], np.eye(4) / 4, atol=1e-9)


def test_shot_sampling_is_reproducible_and_close_to_exact():
    circuit = _bell_circuit()
    result = DensityMatrixSimulator(2).run(circuit)
    exact = result.expectation_z([0, 1])
    sampled_a = result.sample_expectation_z([0, 1], shots=2000, seed=42)
    sampled_b = result.sample_expectation_z([0, 1], shots=2000, seed=42)
    assert np.allclose(sampled_a, sampled_b)
    assert np.allclose(sampled_a, exact, atol=0.1)


def test_from_statevectors_builds_outer_products():
    states = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex)
    rho = DensityMatrixSimulator.from_statevectors(states)
    assert np.allclose(rho[0], [[1, 0], [0, 0]])
    assert np.allclose(rho[1], [[0, 0], [0, 1]])


def test_run_rejects_mismatched_circuit():
    with pytest.raises(SimulationError):
        DensityMatrixSimulator(2).run(QuantumCircuit(3))


def test_apply_feature_rotations_adds_noise():
    simulator = DensityMatrixSimulator(1)
    noise = NoiseModel(num_qubits=1, single_qubit_error={0: 0.3})
    rho = simulator.zero_state(batch=1)
    rho_noisy = simulator.apply_feature_rotations(
        rho, "ry", 0, np.array([np.pi]), noise_model=noise
    )
    rho_clean = simulator.apply_feature_rotations(rho, "ry", 0, np.array([np.pi]))
    # Noisy encoding leaves less population in |1> than the clean one.
    assert rho_noisy[0, 1, 1].real < rho_clean[0, 1, 1].real
