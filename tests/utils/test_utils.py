"""Tests for shared utilities (RNG handling and linear algebra helpers)."""

import numpy as np
import pytest

from repro.utils.linalg import (
    fidelity,
    is_density_matrix,
    is_hermitian,
    is_unitary,
    kron_all,
    project_to_density_matrix,
    trace_distance,
)
from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_accepts_seed_generator_and_none():
    assert isinstance(ensure_rng(None), np.random.Generator)
    generator = np.random.default_rng(0)
    assert ensure_rng(generator) is generator
    assert ensure_rng(5).integers(0, 10) == ensure_rng(5).integers(0, 10)


def test_spawn_rngs_are_independent_and_reproducible():
    first = [g.integers(0, 1000) for g in spawn_rngs(7, 3)]
    second = [g.integers(0, 1000) for g in spawn_rngs(7, 3)]
    assert first == second
    assert len(set(first)) > 1
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_is_unitary_and_hermitian():
    hadamard = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
    assert is_unitary(hadamard)
    assert is_hermitian(hadamard)
    assert not is_unitary(np.array([[1, 1], [0, 1]]))
    assert not is_hermitian(np.array([[0, 1], [2, 0]]))
    assert not is_unitary(np.ones((2, 3)))


def test_is_density_matrix():
    assert is_density_matrix(np.eye(2) / 2)
    assert not is_density_matrix(np.eye(2))            # trace 2
    assert not is_density_matrix(np.diag([1.5, -0.5]))  # negative eigenvalue


def test_kron_all():
    x = np.array([[0, 1], [1, 0]])
    identity = np.eye(2)
    assert np.allclose(kron_all([x, identity]), np.kron(x, identity))
    with pytest.raises(ValueError):
        kron_all([])


def test_fidelity_and_trace_distance_extremes():
    zero = np.diag([1.0, 0.0]).astype(complex)
    one = np.diag([0.0, 1.0]).astype(complex)
    assert fidelity(zero, zero) == pytest.approx(1.0)
    assert fidelity(zero, one) == pytest.approx(0.0, abs=1e-9)
    assert trace_distance(zero, one) == pytest.approx(1.0)
    assert trace_distance(zero, zero) == pytest.approx(0.0)


def test_project_to_density_matrix_fixes_small_violations():
    noisy = np.diag([1.001, -0.001]).astype(complex)
    projected = project_to_density_matrix(noisy)
    assert is_density_matrix(projected)
    with pytest.raises(ValueError):
        project_to_density_matrix(np.zeros((2, 2)))
