"""Tests for calibration histories and the synthetic fluctuating-noise generator."""

import numpy as np
import pytest

from repro.calibration import (
    BackendSpec,
    CalibrationHistory,
    CalibrationSnapshot,
    FluctuatingNoiseGenerator,
    FluctuationConfig,
    belem_backend,
    device_seed_sequence,
    generate_belem_history,
    generate_device_history,
    generate_jakarta_history,
)
from repro.exceptions import CalibrationError
from repro.transpiler.devices import get_device_coupling


def test_history_split_matches_paper_layout():
    history = generate_belem_history(20, seed=0)
    offline, online = history.split(12)
    assert len(offline) == 12
    assert len(online) == 8
    with pytest.raises(CalibrationError):
        history.split(50)


def test_history_matrix_shape():
    history = generate_belem_history(10, seed=0)
    matrix = history.to_matrix()
    assert matrix.shape == (10, len(history.feature_names()))
    assert np.all(matrix > 0)


def test_history_feature_series_lookup():
    history = generate_belem_history(10, seed=0)
    name = history.feature_names()[0]
    series = history.feature_series(name)
    assert series.shape == (10,)
    with pytest.raises(CalibrationError):
        history.feature_series("nonexistent")


def test_history_rejects_mixed_layouts():
    belem = generate_belem_history(2, seed=0)
    jakarta_snapshot = generate_jakarta_history(1, seed=0)[0]
    with pytest.raises(CalibrationError):
        belem.append(jakarta_snapshot)


def test_history_json_round_trip(tmp_path):
    history = generate_belem_history(5, seed=3)
    path = tmp_path / "history.json"
    history.to_json(path)
    loaded = CalibrationHistory.from_json(path)
    assert len(loaded) == 5
    assert np.allclose(loaded.to_matrix(), history.to_matrix())
    assert loaded.dates == history.dates


def test_generator_is_deterministic_per_seed():
    first = generate_belem_history(15, seed=42)
    second = generate_belem_history(15, seed=42)
    different = generate_belem_history(15, seed=43)
    assert np.allclose(first.to_matrix(), second.to_matrix())
    assert not np.allclose(first.to_matrix(), different.to_matrix())


def test_generated_rates_respect_caps():
    config = FluctuationConfig()
    history = generate_belem_history(120, seed=1, config=config)
    matrix = history.to_matrix()
    names = history.feature_names()
    for index, name in enumerate(names):
        column = matrix[:, index]
        if name.startswith("sq_"):
            assert np.all(column <= config.single_qubit_cap + 1e-12)
        elif name.startswith("cx_"):
            assert np.all(column <= config.two_qubit_cap + 1e-12)
        else:
            assert np.all(column <= config.readout_cap + 1e-12)
        assert np.all(column > 0)


def test_generated_noise_fluctuates_widely():
    history = generate_belem_history(250, seed=2021)
    cx_columns = [n for n in history.feature_names() if n.startswith("cx_")]
    ratios = [
        history.feature_series(name).max() / history.feature_series(name).min()
        for name in cx_columns
    ]
    assert max(ratios) > 3.0


def test_heterogeneity_worst_coupler_changes_over_time():
    history = generate_belem_history(250, seed=2021)
    matrix = history.to_matrix()
    names = history.feature_names()
    cx_indices = [i for i, n in enumerate(names) if n.startswith("cx_")]
    worst = matrix[:, cx_indices].argmax(axis=1)
    assert len(set(worst.tolist())) > 1


def test_dates_are_consecutive_iso_strings():
    history = generate_belem_history(3, seed=0, start_date="2021-08-10")
    assert history.dates == ["2021-08-10", "2021-08-11", "2021-08-12"]


def test_generator_rejects_bad_inputs():
    generator = FluctuatingNoiseGenerator(belem_backend(), seed=0)
    with pytest.raises(CalibrationError):
        generator.generate(0)


def test_jakarta_history_has_seven_qubit_layout():
    history = generate_jakarta_history(3, seed=0)
    assert history[0].num_qubits == 7
    assert len([n for n in history.feature_names() if n.startswith("cx_")]) == 6


def _same_baseline_spec(name: str) -> BackendSpec:
    """Two specs sharing one topology and identical baselines, names apart."""
    coupling = get_device_coupling("ring_5")
    return BackendSpec(
        name=name,
        coupling=coupling,
        base_single_qubit_error={q: 2.5e-4 for q in range(5)},
        base_two_qubit_error={edge: 9.0e-3 for edge in coupling.edges},
        base_readout_error={q: 3.0e-2 for q in range(5)},
    )


def test_multi_device_runs_get_independent_traces_per_device():
    """Regression: one master seed must not replay one trace fleet-wide.

    ``generate_device_history`` used to reseed identically for every
    device, so two devices with the same channel shape received the *same*
    fluctuation draws.  Per-device seed streams must decorrelate them
    while keeping each device's own trace reproducible.
    """
    first = generate_device_history(_same_baseline_spec("fleet_a"), 12, seed=2021)
    second = generate_device_history(_same_baseline_spec("fleet_b"), 12, seed=2021)
    assert first.to_matrix().shape == second.to_matrix().shape
    assert not np.allclose(first.to_matrix(), second.to_matrix())
    replay = generate_device_history(_same_baseline_spec("fleet_a"), 12, seed=2021)
    assert np.array_equal(first.to_matrix(), replay.to_matrix())


def test_library_device_histories_are_seed_and_device_keyed():
    base = generate_device_history("ring_5", 8, seed=11)
    same = generate_device_history("ring_5", 8, seed=11)
    other_seed = generate_device_history("ring_5", 8, seed=12)
    assert np.array_equal(base.to_matrix(), same.to_matrix())
    assert not np.allclose(base.to_matrix(), other_seed.to_matrix())


def test_ibm_names_stay_bit_identical_to_dedicated_generators():
    """The paper chips keep their legacy streams (reproduction parity)."""
    for name, generator in (
        ("belem", generate_belem_history),
        ("jakarta", generate_jakarta_history),
    ):
        via_device = generate_device_history(name, 10, seed=5)
        dedicated = generator(10, seed=5)
        assert np.array_equal(via_device.to_matrix(), dedicated.to_matrix())
        assert via_device.dates == dedicated.dates


def test_device_seed_sequence_is_stable_and_label_sensitive():
    first = device_seed_sequence("ring_5", 7).generate_state(4)
    again = device_seed_sequence("ring_5", 7).generate_state(4)
    other_device = device_seed_sequence("line_5", 7).generate_state(4)
    other_label = device_seed_sequence("ring_5", 7, "scenario").generate_state(4)
    assert np.array_equal(first, again)
    assert not np.array_equal(first, other_device)
    assert not np.array_equal(first, other_label)
