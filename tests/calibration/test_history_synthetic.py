"""Tests for calibration histories and the synthetic fluctuating-noise generator."""

import numpy as np
import pytest

from repro.calibration import (
    CalibrationHistory,
    CalibrationSnapshot,
    FluctuatingNoiseGenerator,
    FluctuationConfig,
    belem_backend,
    generate_belem_history,
    generate_jakarta_history,
)
from repro.exceptions import CalibrationError


def test_history_split_matches_paper_layout():
    history = generate_belem_history(20, seed=0)
    offline, online = history.split(12)
    assert len(offline) == 12
    assert len(online) == 8
    with pytest.raises(CalibrationError):
        history.split(50)


def test_history_matrix_shape():
    history = generate_belem_history(10, seed=0)
    matrix = history.to_matrix()
    assert matrix.shape == (10, len(history.feature_names()))
    assert np.all(matrix > 0)


def test_history_feature_series_lookup():
    history = generate_belem_history(10, seed=0)
    name = history.feature_names()[0]
    series = history.feature_series(name)
    assert series.shape == (10,)
    with pytest.raises(CalibrationError):
        history.feature_series("nonexistent")


def test_history_rejects_mixed_layouts():
    belem = generate_belem_history(2, seed=0)
    jakarta_snapshot = generate_jakarta_history(1, seed=0)[0]
    with pytest.raises(CalibrationError):
        belem.append(jakarta_snapshot)


def test_history_json_round_trip(tmp_path):
    history = generate_belem_history(5, seed=3)
    path = tmp_path / "history.json"
    history.to_json(path)
    loaded = CalibrationHistory.from_json(path)
    assert len(loaded) == 5
    assert np.allclose(loaded.to_matrix(), history.to_matrix())
    assert loaded.dates == history.dates


def test_generator_is_deterministic_per_seed():
    first = generate_belem_history(15, seed=42)
    second = generate_belem_history(15, seed=42)
    different = generate_belem_history(15, seed=43)
    assert np.allclose(first.to_matrix(), second.to_matrix())
    assert not np.allclose(first.to_matrix(), different.to_matrix())


def test_generated_rates_respect_caps():
    config = FluctuationConfig()
    history = generate_belem_history(120, seed=1, config=config)
    matrix = history.to_matrix()
    names = history.feature_names()
    for index, name in enumerate(names):
        column = matrix[:, index]
        if name.startswith("sq_"):
            assert np.all(column <= config.single_qubit_cap + 1e-12)
        elif name.startswith("cx_"):
            assert np.all(column <= config.two_qubit_cap + 1e-12)
        else:
            assert np.all(column <= config.readout_cap + 1e-12)
        assert np.all(column > 0)


def test_generated_noise_fluctuates_widely():
    history = generate_belem_history(250, seed=2021)
    cx_columns = [n for n in history.feature_names() if n.startswith("cx_")]
    ratios = [
        history.feature_series(name).max() / history.feature_series(name).min()
        for name in cx_columns
    ]
    assert max(ratios) > 3.0


def test_heterogeneity_worst_coupler_changes_over_time():
    history = generate_belem_history(250, seed=2021)
    matrix = history.to_matrix()
    names = history.feature_names()
    cx_indices = [i for i, n in enumerate(names) if n.startswith("cx_")]
    worst = matrix[:, cx_indices].argmax(axis=1)
    assert len(set(worst.tolist())) > 1


def test_dates_are_consecutive_iso_strings():
    history = generate_belem_history(3, seed=0, start_date="2021-08-10")
    assert history.dates == ["2021-08-10", "2021-08-11", "2021-08-12"]


def test_generator_rejects_bad_inputs():
    generator = FluctuatingNoiseGenerator(belem_backend(), seed=0)
    with pytest.raises(CalibrationError):
        generator.generate(0)


def test_jakarta_history_has_seven_qubit_layout():
    history = generate_jakarta_history(3, seed=0)
    assert history[0].num_qubits == 7
    assert len([n for n in history.feature_names() if n.startswith("cx_")]) == 6
