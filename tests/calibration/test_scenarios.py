"""Property tests for the drift-scenario library and its combinators."""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import (
    CalmScenario,
    CompositeScenario,
    GradualDrift,
    HeteroskedasticNoise,
    ReadoutDrift,
    SCENARIO_LIBRARY,
    ScenarioBounds,
    SuddenJump,
    backend_channels,
    get_backend,
    get_scenario,
    list_scenarios,
)
from repro.exceptions import CalibrationError

#: Devices spanning the paper chips and the library topologies.
DEVICES = ["belem", "jakarta", "ring_5", "grid_2x3", "line_7"]

scenario_names = st.sampled_from(sorted(SCENARIO_LIBRARY))
devices = st.sampled_from(DEVICES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
day_counts = st.integers(min_value=1, max_value=24)


def assert_valid_history(history, num_days, bounds=None):
    """Shared validity oracle: bounded rates, monotone consecutive dates."""
    bounds = bounds or ScenarioBounds()
    assert len(history) == num_days
    matrix = history.to_matrix()
    names = history.feature_names()
    assert matrix.shape == (num_days, len(names))
    assert np.all(matrix > 0)
    for column, name in enumerate(names):
        series = matrix[:, column]
        if name.startswith("sq_"):
            low, high = bounds.single_qubit_floor, bounds.single_qubit_cap
        elif name.startswith("cx_"):
            low, high = bounds.two_qubit_floor, bounds.two_qubit_cap
        else:
            low, high = bounds.readout_floor, bounds.readout_cap
        assert np.all(series >= low - 1e-15), name
        assert np.all(series <= high + 1e-15), name
    days = [date.fromisoformat(value) for value in history.dates]
    deltas = [(later - earlier).days for earlier, later in zip(days, days[1:])]
    assert all(delta == 1 for delta in deltas), "dates must be consecutive"


@settings(max_examples=40, deadline=None)
@given(name=scenario_names, device=devices, num_days=day_counts, seed=seeds)
def test_every_builtin_scenario_yields_valid_histories(name, device, num_days, seed):
    """Any (scenario, device, length, seed) cell renders valid snapshots."""
    history = get_scenario(name).history(device, num_days, seed=seed)
    assert_valid_history(history, num_days)


@settings(max_examples=20, deadline=None)
@given(name=scenario_names, device=devices, seed=seeds)
def test_scenarios_are_deterministic_under_a_fixed_seed(name, device, seed):
    """Two renders of the same cell are bit-identical."""
    first = get_scenario(name).history(device, 10, seed=seed)
    second = get_scenario(name).history(device, 10, seed=seed)
    assert np.array_equal(first.to_matrix(), second.to_matrix())
    assert first.dates == second.dates


@settings(max_examples=20, deadline=None)
@given(device=devices, seed=seeds)
def test_combinators_are_deterministic_under_a_fixed_seed(device, seed):
    """Sum / scale / splice compositions replay bit-identically."""
    def build():
        return (GradualDrift() + SuddenJump().scaled(0.7)).splice(
            HeteroskedasticNoise(), 0.5
        )

    first = build().history(device, 12, seed=seed)
    second = build().history(device, 12, seed=seed)
    assert np.array_equal(first.to_matrix(), second.to_matrix())


#: Scenarios guaranteed to draw fresh randomness every day.  ``calm`` is
#: seed-independent by design, and ``jump`` / ``recovery`` may legitimately
#: render an all-baseline trace when no jump event fires inside the window
#: (P ≈ 0.92^16 per seed), so two seeds can collide without a bug.
ALWAYS_RANDOM_SCENARIOS = [
    name for name in sorted(SCENARIO_LIBRARY) if name not in ("calm", "jump", "recovery")
]


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(ALWAYS_RANDOM_SCENARIOS), device=devices, seed=seeds
)
def test_different_seeds_decorrelate_nontrivial_scenarios(name, device, seed):
    """Different master seeds must not replay the same drift trace."""
    first = get_scenario(name).history(device, 16, seed=seed)
    second = get_scenario(name).history(device, 16, seed=seed + 1)
    assert not np.array_equal(first.to_matrix(), second.to_matrix())


def test_certain_jumps_decorrelate_across_seeds():
    """With events guaranteed daily, the jump regime is seed-sensitive."""
    certain = SuddenJump(jump_rate=1.0, recalibration_rate=0.5)
    first = certain.history("ring_5", 16, seed=100)
    second = certain.history("ring_5", 16, seed=101)
    assert not np.array_equal(first.to_matrix(), second.to_matrix())


def test_scaling_by_zero_recovers_the_calm_baseline():
    spec = get_backend("ring_5", seed=3)
    channels = backend_channels(spec)
    rng = np.random.default_rng(0)
    zeroed = SuddenJump().scaled(0.0).field(8, channels, rng)
    assert np.array_equal(zeroed, np.zeros((8, len(channels))))
    calm = CalmScenario().field(8, channels, np.random.default_rng(1))
    assert np.array_equal(zeroed, calm)


def test_calm_scenario_replays_the_baseline_every_day():
    history = CalmScenario().history("ring_5", 5, seed=3)
    first = history[0].to_vector()
    for snapshot in history:
        assert np.array_equal(snapshot.to_vector(), first)


def test_composite_flattens_and_names_itself():
    composite = GradualDrift() + SuddenJump() + HeteroskedasticNoise()
    assert isinstance(composite, CompositeScenario)
    assert len(composite.parts) == 3
    assert composite.name == "seasonal+jump+heteroskedastic"


def test_splice_switches_regimes_at_the_requested_day():
    """Before the splice the field is calm; after it the jump regime runs."""
    spec = get_backend("ring_5", seed=3)
    channels = backend_channels(spec)
    spliced = CalmScenario().splice(SuddenJump(jump_rate=1.0), 4)
    field = spliced.field(10, channels, np.random.default_rng(5))
    assert np.array_equal(field[:4], np.zeros((4, len(channels))))
    assert np.abs(field[4:]).sum() > 0


def test_splice_accepts_fractions_and_rejects_nonpositive_points():
    spliced = CalmScenario().splice(SuddenJump(), 0.5)
    assert spliced._split_day(10) == 5
    with pytest.raises(CalibrationError):
        CalmScenario().splice(SuddenJump(), 0)


def test_readout_drift_leaves_gate_channels_at_baseline():
    history = ReadoutDrift().history("ring_5", 12, seed=9)
    matrix = history.to_matrix()
    names = history.feature_names()
    gate_columns = [
        i for i, name in enumerate(names) if not name.startswith("ro_")
    ]
    readout_columns = [i for i, name in enumerate(names) if name.startswith("ro_")]
    for column in gate_columns:
        assert np.allclose(matrix[:, column], matrix[0, column])
    moved = any(
        not np.allclose(matrix[:, column], matrix[0, column])
        for column in readout_columns
    )
    assert moved, "readout channels must actually drift"


def test_channels_match_snapshot_feature_order():
    spec = get_backend("grid_2x3", seed=1)
    channels = backend_channels(spec)
    history = CalmScenario().history("grid_2x3", 1, seed=1)
    expected = history.feature_names()
    rebuilt = [
        f"sq_{channel.key}"
        if channel.kind == "single"
        else f"cx_{channel.key[0]}_{channel.key[1]}"
        if channel.kind == "two"
        else f"ro_{channel.key}"
        for channel in channels
    ]
    assert rebuilt == expected


def test_get_scenario_passthrough_and_errors():
    instance = GradualDrift()
    assert get_scenario(instance) is instance
    assert set(list_scenarios()) == set(SCENARIO_LIBRARY)
    with pytest.raises(CalibrationError):
        get_scenario("not_a_scenario")


def test_scenario_history_rejects_nonpositive_day_counts():
    with pytest.raises(CalibrationError):
        CalmScenario().history("ring_5", 0, seed=1)


def test_library_factories_return_fresh_instances():
    assert get_scenario("storm") is not get_scenario("storm")
