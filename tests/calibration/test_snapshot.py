"""Tests for calibration snapshots."""

import numpy as np
import pytest

from repro.calibration import CalibrationSnapshot
from repro.exceptions import CalibrationError


@pytest.fixture()
def snapshot():
    return CalibrationSnapshot(
        num_qubits=3,
        single_qubit_error={0: 1e-4, 1: 2e-4, 2: 3e-4},
        two_qubit_error={(0, 1): 0.01, (2, 1): 0.02},
        readout_error={0: 0.02, 1: 0.03, 2: 0.04},
        date="2022-01-01",
    )


def test_pairs_are_normalized(snapshot):
    assert (1, 2) in snapshot.two_qubit_error
    assert snapshot.cx_error(2, 1) == pytest.approx(0.02)
    assert snapshot.cx_error(1, 2) == pytest.approx(0.02)


def test_lookups_default_to_zero(snapshot):
    assert snapshot.gate_error(2) == pytest.approx(3e-4)
    assert snapshot.cx_error(0, 2) == 0.0
    assert snapshot.readout(5) == 0.0


def test_noise_on_dispatches_by_arity(snapshot):
    assert snapshot.noise_on((1,)) == pytest.approx(2e-4)
    assert snapshot.noise_on((0, 1)) == pytest.approx(0.01)
    with pytest.raises(CalibrationError):
        snapshot.noise_on((0, 1, 2))


def test_vector_round_trip(snapshot):
    vector = snapshot.to_vector()
    assert vector.shape == (len(snapshot.feature_names()),)
    rebuilt = CalibrationSnapshot.from_vector(vector, snapshot, date="rebuilt")
    assert np.allclose(rebuilt.to_vector(), vector)
    assert rebuilt.date == "rebuilt"
    assert rebuilt.two_qubit_error == snapshot.two_qubit_error


def test_from_vector_rejects_wrong_length(snapshot):
    with pytest.raises(CalibrationError):
        CalibrationSnapshot.from_vector(np.zeros(3), snapshot)


def test_feature_names_are_sorted_and_stable(snapshot):
    names = snapshot.feature_names()
    assert names[0].startswith("sq_")
    assert any(name.startswith("cx_") for name in names)
    assert names == snapshot.feature_names()


def test_dict_round_trip(snapshot):
    rebuilt = CalibrationSnapshot.from_dict(snapshot.to_dict())
    assert rebuilt.num_qubits == snapshot.num_qubits
    assert rebuilt.two_qubit_error == snapshot.two_qubit_error
    assert rebuilt.date == snapshot.date


def test_validation_rejects_bad_values():
    with pytest.raises(CalibrationError):
        CalibrationSnapshot(num_qubits=0)
    with pytest.raises(CalibrationError):
        CalibrationSnapshot(num_qubits=2, single_qubit_error={5: 0.1})
    with pytest.raises(CalibrationError):
        CalibrationSnapshot(num_qubits=2, readout_error={0: 1.5})
    with pytest.raises(CalibrationError):
        CalibrationSnapshot(num_qubits=2, two_qubit_error={(0, 0): 0.1})


def test_summary_reports_means(snapshot):
    summary = snapshot.summary()
    assert summary["mean_single_qubit_error"] == pytest.approx(2e-4)
    assert summary["mean_two_qubit_error"] == pytest.approx(0.015)
    assert summary["mean_readout_error"] == pytest.approx(0.03)
