"""Tests for calibration distances and performance-aware weights."""

import numpy as np
import pytest

from repro.calibration import (
    l2_distance,
    pairwise_weighted_l1,
    performance_weights,
    weighted_l1_distance,
)
from repro.exceptions import CalibrationError


def test_performance_weights_highlight_correlated_feature():
    rng = np.random.default_rng(0)
    days = 60
    correlated = rng.uniform(0.01, 0.05, days)
    irrelevant = rng.uniform(0.01, 0.05, days)
    calibrations = np.stack([correlated, irrelevant], axis=1)
    accuracies = 0.9 - 5.0 * correlated + rng.normal(0, 0.01, days)
    weights = performance_weights(calibrations, accuracies)
    assert weights[0] > weights[1]
    assert 0 <= weights[1] <= 1


def test_performance_weights_zero_for_constant_columns():
    calibrations = np.column_stack([np.full(10, 0.02), np.linspace(0.01, 0.05, 10)])
    accuracies = np.linspace(0.9, 0.5, 10)
    weights = performance_weights(calibrations, accuracies)
    assert weights[0] == pytest.approx(0.0, abs=1e-9)
    assert weights[1] == pytest.approx(1.0, abs=1e-6)


def test_performance_weights_zero_when_accuracy_constant():
    calibrations = np.random.default_rng(0).uniform(size=(10, 3))
    weights = performance_weights(calibrations, np.full(10, 0.7))
    assert np.all(weights == 0)


def test_performance_weights_shape_validation():
    with pytest.raises(CalibrationError):
        performance_weights(np.ones((5, 2)), np.ones(4))
    with pytest.raises(CalibrationError):
        performance_weights(np.ones(5), np.ones(5))


def test_weighted_l1_distance_basic():
    x = np.array([1.0, 2.0])
    y = np.array([2.0, 0.0])
    weights = np.array([1.0, 0.5])
    assert weighted_l1_distance(x, y, weights) == pytest.approx(1.0 + 1.0)


def test_weighted_l1_distance_is_symmetric_and_zero_on_identity():
    x = np.array([0.1, 0.2, 0.3])
    y = np.array([0.3, 0.1, 0.0])
    w = np.array([1.0, 2.0, 3.0])
    assert weighted_l1_distance(x, x, w) == 0.0
    assert weighted_l1_distance(x, y, w) == pytest.approx(weighted_l1_distance(y, x, w))


def test_weighted_l1_shape_validation():
    with pytest.raises(CalibrationError):
        weighted_l1_distance(np.ones(2), np.ones(3), np.ones(2))


def test_l2_distance():
    assert l2_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)
    with pytest.raises(CalibrationError):
        l2_distance(np.ones(2), np.ones(3))


def test_pairwise_weighted_l1_matches_scalar_function():
    rng = np.random.default_rng(1)
    points = rng.uniform(size=(4, 3))
    centers = rng.uniform(size=(2, 3))
    weights = rng.uniform(size=3)
    matrix = pairwise_weighted_l1(points, centers, weights)
    assert matrix.shape == (4, 2)
    for i in range(4):
        for j in range(2):
            assert matrix[i, j] == pytest.approx(
                weighted_l1_distance(points[i], centers[j], weights)
            )
