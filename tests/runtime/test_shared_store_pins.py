"""Pin semantics of the SharedArrayStore LRU.

The serving supervisor pins every in-flight request window
(:meth:`~repro.serving.shards.ShardSupervisor.share_window`), so a block
must never be unlinked while a consumer may still attach it — no matter how
many other arrays pass through the store in between.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.workers import SharedArrayStore, attach_shared_array


def test_pinned_blocks_survive_lru_overflow():
    """A pinned block outlives arbitrarily many newer shares."""
    store = SharedArrayStore(capacity=2)
    try:
        pinned = store.share(np.full(4, 1.0), pin=True)
        for value in range(5):
            store.share(np.full(4, float(value + 2)))
        assert pinned["name"] in store.names()
        blocks: dict[str, object] = {}
        view = attach_shared_array(pinned, blocks)
        np.testing.assert_array_equal(view, np.full(4, 1.0))
        for block in blocks.values():
            block.close()
        store.release(pinned["name"])
        store.share(np.full(4, 99.0))  # overflow now evicts the unpinned block
        assert pinned["name"] not in store.names()
    finally:
        store.close()


def test_pin_refcounts_per_consumer():
    """Identical content pinned twice needs two releases to become evictable."""
    store = SharedArrayStore(capacity=1)
    try:
        array = np.arange(8.0)
        first = store.share(array, pin=True)
        second = store.share(array, pin=True)
        assert first["name"] == second["name"]
        store.release(first["name"])
        store.share(np.ones(8))  # overflow; the block holds its second pin
        assert first["name"] in store.names()
        store.release(first["name"])
        store.share(np.full(8, 2.0))
        assert first["name"] not in store.names()
    finally:
        store.close()


def test_release_of_unknown_name_is_a_noop():
    """Releasing an unpinned or unknown name never raises."""
    store = SharedArrayStore(capacity=2)
    try:
        meta = store.share(np.zeros(3))
        store.release(meta["name"])
        store.release("never-shared")
        store.release(None)
        assert meta["name"] in store.names()
    finally:
        store.close()
