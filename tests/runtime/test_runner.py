"""The experiment runner: modes, chunking, caching, and run records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.exceptions import ReproError
from repro.qnn import QNNModel, evaluate_noisy
from repro.runtime import (
    EvaluationCache,
    ExperimentRunner,
    RunRecord,
    load_run_records,
    model_digest,
    noise_model_digest,
)
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="module")
def harness():
    rng = np.random.default_rng(17)
    history = generate_belem_history(6, seed=4)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=2)
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=60, seed=5)
    features, labels = dataset.test_features[:6], dataset.test_labels[:6]
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    parameter_sets = [
        rng.uniform(-np.pi, np.pi, model.num_parameters) for _ in range(6)
    ]
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(6)]
    reference = np.array(
        [
            evaluate_noisy(
                model, features, labels, noise_model,
                parameters=parameters, shots=128, seed=seed,
            ).accuracy
            for noise_model, parameters, seed in zip(noise_models, parameter_sets, seeds)
        ]
    )
    return model, features, labels, noise_models, parameter_sets, seeds, reference


@pytest.mark.parametrize("mode", ["serial", "thread", "pool"])
def test_runner_matches_sequential_evaluation(harness, mode):
    model, features, labels, noise_models, parameter_sets, seeds, reference = harness
    with ExperimentRunner(mode=mode, chunk_days=2, max_workers=1) as runner:
        accuracies = runner.evaluate_days(
            model, features, labels, noise_models,
            parameter_sets=parameter_sets, shots=128, seeds=seeds,
        )
    assert np.array_equal(accuracies, reference)
    assert runner.stats.days_evaluated == len(noise_models)


def test_pool_runner_reuses_workers_and_recreates_after_close(harness):
    model, features, labels, noise_models, parameter_sets, seeds, reference = harness
    runner = ExperimentRunner(mode="pool", chunk_days=3, max_workers=1)
    try:
        first = runner.evaluate_days(
            model, features, labels, noise_models,
            parameter_sets=parameter_sets, shots=128, seeds=seeds,
        )
        pids = runner.pool.pids()
        second = runner.evaluate_days(
            model, features, labels, noise_models,
            parameter_sets=parameter_sets, shots=128, seeds=seeds,
        )
        assert np.array_equal(first, reference)
        assert np.array_equal(second, reference)
        # The persistent pool serves both calls with the same warm worker.
        assert runner.pool.pids() == pids
        assert runner.pool.stats.workers_spawned == 1

        # close() releases the pool; the next call transparently builds a
        # fresh one instead of failing on a closed pool.
        runner.close()
        assert runner.pool is None
        third = runner.evaluate_days(
            model, features, labels, noise_models,
            parameter_sets=parameter_sets, shots=128, seeds=seeds,
        )
        assert np.array_equal(third, reference)
        assert runner.pool is not None and not runner.pool.closed
    finally:
        runner.close()


def test_runner_cache_hits_skip_evaluation(harness, tmp_path):
    model, features, labels, noise_models, parameter_sets, seeds, reference = harness
    cache = EvaluationCache(tmp_path / "cache.jsonl")
    runner = ExperimentRunner(mode="serial", chunk_days=3, cache=cache)
    first = runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=128, seeds=seeds,
    )
    evaluated_after_first = runner.stats.days_evaluated
    second = runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=128, seeds=seeds,
    )
    assert np.array_equal(first, reference)
    assert np.array_equal(second, reference)
    assert runner.stats.days_evaluated == evaluated_after_first
    assert runner.stats.cache_hits == len(noise_models)

    # A fresh cache loaded from the same file warm-starts a new runner.
    warm = ExperimentRunner(
        mode="serial", cache=EvaluationCache(tmp_path / "cache.jsonl")
    )
    third = warm.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=128, seeds=seeds,
    )
    assert np.array_equal(third, reference)
    assert warm.stats.days_evaluated == 0


def test_runner_cache_distinguishes_bindings(harness):
    model, *_ = harness
    digest_a = model_digest(model)
    digest_b = model_digest(model, parameters=np.zeros(model.num_parameters))
    assert digest_a != digest_b
    history = generate_belem_history(2, seed=8)
    assert noise_model_digest(
        NoiseModel.from_calibration(history[0])
    ) != noise_model_digest(NoiseModel.from_calibration(history[1]))


def test_runner_writes_records(harness, tmp_path):
    model, features, labels, noise_models, parameter_sets, seeds, _ = harness
    record_path = tmp_path / "records.jsonl"
    runner = ExperimentRunner(mode="serial", chunk_days=4, record_log=record_path)
    runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=128, seeds=seeds,
        experiment="unit/records", dates=[f"day{i}" for i in range(len(noise_models))],
    )
    records = load_run_records(record_path)
    assert len(records) == len(noise_models)
    assert all(isinstance(record, RunRecord) for record in records)
    assert records[0].experiment == "unit/records"
    assert records[0].date == "day0"
    assert all(record.accuracy is not None for record in records)


def test_runner_accepts_numpy_seeds_with_records(harness, tmp_path):
    model, features, labels, noise_models, parameter_sets, _, _ = harness
    numpy_seeds = list(np.random.default_rng(0).integers(0, 2**31, len(noise_models)))
    runner = ExperimentRunner(mode="serial", record_log=tmp_path / "np_seeds.jsonl")
    accuracies = runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=64, seeds=numpy_seeds,
    )
    records = load_run_records(tmp_path / "np_seeds.jsonl")
    assert len(records) == len(noise_models)
    assert all(isinstance(record.extra["seed"], int) for record in records)
    assert np.all((accuracies >= 0.0) & (accuracies <= 1.0))


def test_runner_does_not_cache_unseeded_sampling(harness):
    model, features, labels, noise_models, parameter_sets, _, _ = harness
    runner = ExperimentRunner(mode="serial", cache=EvaluationCache())
    first = runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=16,
    )
    second = runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=16,
    )
    # Fresh random draws both times: nothing cached, nothing replayed.
    assert runner.stats.cache_hits == 0
    assert len(runner.cache) == 0
    # Exact expectations (shots=None) remain cacheable.
    runner.evaluate_days(
        model, features, labels, noise_models, parameter_sets=parameter_sets
    )
    assert len(runner.cache) == len(noise_models)
    del first, second


def test_cache_key_digests_computed_once_per_object(harness, monkeypatch):
    """The cache-key loop derives each digest once, not once per day.

    Day sweeps pass one shared parameter vector and D distinct noise
    models; before the memoization fix the runner re-hashed the full
    parameter vector (and channel map) for every single day.
    """
    import repro.runtime.runner as runner_module

    model, features, labels, noise_models, _parameter_sets, seeds, _ = harness
    calls = {"model": 0, "noise": 0}
    real_model_digest = runner_module.model_digest
    real_noise_digest = runner_module.noise_model_digest

    def counting_model_digest(*args, **kwargs):
        calls["model"] += 1
        return real_model_digest(*args, **kwargs)

    def counting_noise_digest(*args, **kwargs):
        calls["noise"] += 1
        return real_noise_digest(*args, **kwargs)

    monkeypatch.setattr(runner_module, "model_digest", counting_model_digest)
    monkeypatch.setattr(runner_module, "noise_model_digest", counting_noise_digest)

    shared = np.zeros(model.num_parameters)
    runner = ExperimentRunner(mode="serial", chunk_days=3, cache=EvaluationCache())
    runner.evaluate_days(
        model, features, labels, noise_models,
        parameter_sets=[shared] * len(noise_models), shots=128, seeds=seeds,
    )
    # One shared binding object → one model digest; D distinct noise-model
    # objects → exactly D noise digests.
    assert calls["model"] == 1
    assert calls["noise"] == len(noise_models)

    # A sweep that repeats one noise-model object hashes it only once too.
    calls["model"] = calls["noise"] = 0
    runner.evaluate_days(
        model, features, labels, [noise_models[0]] * len(noise_models),
        parameter_sets=[shared] * len(noise_models), shots=128, seeds=seeds,
    )
    assert calls["model"] == 1
    assert calls["noise"] == 1


def test_runner_rejects_bad_configuration():
    with pytest.raises(ReproError):
        ExperimentRunner(mode="quantum")
    with pytest.raises(ReproError):
        ExperimentRunner(chunk_days=0)


def test_runner_map_preserves_order():
    runner = ExperimentRunner(mode="thread", max_workers=2)
    assert runner.map(lambda x: x * x, list(range(7))) == [x * x for x in range(7)]
