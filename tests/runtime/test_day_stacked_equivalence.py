"""Property-based equivalence harness for day-stacked execution.

The day-stacked kernels (one fused walk over a ``(days, dim, dim)`` stack
of density matrices, per-gate noise strengths carried as per-day vectors)
are only allowed to exist because they are **bit-identical** to the
per-binding loop.  These tests pin that contract with hypothesis across:

* randomly drawn devices, drift scenarios, day counts, and parameter
  vectors (density backend);
* shared and distinct parameter bindings (statevector backend);
* backend-level, explicit, and mixed per-binding seed streams
  (trajectory backend);
* the full evaluation path (``evaluate_noisy_batch`` vs a
  ``evaluate_noisy`` loop).

Everything asserts with ``np.array_equal`` — no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.calibration.scenarios import get_scenario
from repro.circuits import build_qucad_ansatz
from repro.qnn import QNNModel, evaluate_noisy, evaluate_noisy_batch
from repro.simulator import (
    DensityMatrixBackend,
    NoiseModel,
    SimulationEngine,
    StatevectorBackend,
    TrajectoryBackend,
)
from repro.transpiler import get_device_coupling, transpile

#: Devices the property sweep draws from: one paper chip, two library
#: topologies with different connectivity.
DEVICES = ("belem", "ring_5", "line_5")
#: One gradual and one discontinuous drift family.
SCENARIOS = ("seasonal", "jump", "storm")

COMMON = dict(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)


def _physical_circuit(device: str, parameters_seed: int, history):
    """A 4-qubit ansatz routed onto ``device`` with random bound parameters."""
    ansatz = build_qucad_ansatz(4, repeats=1)
    rng = np.random.default_rng(parameters_seed)
    parameters = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    transpiled = transpile(
        ansatz, get_device_coupling(device), calibration=history[0]
    )
    return transpiled.to_physical(parameters)


@settings(**COMMON)
@given(
    device=st.sampled_from(DEVICES),
    scenario_name=st.sampled_from(SCENARIOS),
    num_days=st.integers(min_value=2, max_value=4),
    drift_seed=st.integers(min_value=0, max_value=2**31 - 1),
    parameters_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_density_day_stack_bitmatches_per_day_loop(
    device, scenario_name, num_days, drift_seed, parameters_seed
):
    """One bound circuit × a scenario-rendered noise history: the stacked
    walk must reproduce the per-day loop bit for bit."""
    history = get_scenario(scenario_name).history(device, num_days, seed=drift_seed)
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    physical = _physical_circuit(device, parameters_seed, history)
    backend = DensityMatrixBackend(engine=SimulationEngine())

    batched = backend.execute_batch(physical, noise_models=noise_models, batch=2)
    for model, result in zip(noise_models, batched):
        reference = backend.execute(physical, noise_model=model, batch=2)
        assert np.array_equal(result.rho, reference.rho)
        assert np.array_equal(
            result.expectation_z(list(range(4))),
            reference.expectation_z(list(range(4))),
        )


@settings(**COMMON)
@given(
    scenario_name=st.sampled_from(SCENARIOS),
    num_days=st.integers(min_value=2, max_value=4),
    drift_seed=st.integers(min_value=0, max_value=2**31 - 1),
    parameters_seed=st.integers(min_value=0, max_value=2**31 - 1),
    shared=st.booleans(),
)
def test_density_explicit_parameter_sets_bitmatch_loop(
    scenario_name, num_days, drift_seed, parameters_seed, shared
):
    """Explicit ``parameter_sets`` — one shared vector (the stacked fast
    path) or distinct vectors (the grouped fallback) — both bit-match."""
    ansatz = build_qucad_ansatz(3, repeats=1)
    rng = np.random.default_rng(parameters_seed)
    if shared:
        vector = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        parameter_sets = [vector] * num_days
    else:
        parameter_sets = [
            rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
            for _ in range(num_days)
        ]
    history = get_scenario(scenario_name).history("belem", num_days, seed=drift_seed)
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    backend = DensityMatrixBackend(engine=SimulationEngine())

    batched = backend.execute_batch(
        ansatz, parameter_sets, noise_models=noise_models, batch=2
    )
    for parameters, model, result in zip(parameter_sets, noise_models, batched):
        reference = backend.execute(
            ansatz, parameters=parameters, noise_model=model, batch=2
        )
        assert np.array_equal(result.rho, reference.rho)


@settings(**COMMON)
@given(
    parameters_seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=2, max_value=5),
    shared=st.booleans(),
)
def test_statevector_batch_bitmatches_loop(parameters_seed, count, shared):
    ansatz = build_qucad_ansatz(4, repeats=1)
    rng = np.random.default_rng(parameters_seed)
    if shared:
        vector = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
        parameter_sets = [vector] * count
    else:
        parameter_sets = [
            rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(count)
        ]
    initial = rng.standard_normal((3, 16)) + 1j * rng.standard_normal((3, 16))
    initial /= np.linalg.norm(initial, axis=1, keepdims=True)
    backend = StatevectorBackend(engine=SimulationEngine())

    batched = backend.execute_batch(ansatz, parameter_sets, initial)
    for parameters, result in zip(parameter_sets, batched):
        reference = backend.execute(ansatz, initial, parameters=parameters)
        assert np.array_equal(result.states, reference.states)


@settings(**COMMON)
@given(
    stream_seed=st.integers(min_value=0, max_value=2**31 - 1),
    parameters_seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=2, max_value=4),
    explicit=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
        min_size=4,
        max_size=4,
    ),
)
def test_trajectory_seed_streams_match_per_call_loop(
    stream_seed, parameters_seed, count, explicit
):
    """Per-binding trajectory seed streams: an explicit seed wins, a ``None``
    draws the next child seed from the backend stream *in binding order* —
    exactly like the equivalent sequence of single ``execute`` calls on a
    fresh backend seeded the same way."""
    ansatz = build_qucad_ansatz(3, repeats=1)
    rng = np.random.default_rng(parameters_seed)
    parameter_sets = [
        rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(count)
    ]
    seeds = explicit[:count]

    batched_backend = TrajectoryBackend(
        engine=SimulationEngine(), shots=64, seed=stream_seed
    )
    loop_backend = TrajectoryBackend(
        engine=SimulationEngine(), shots=64, seed=stream_seed
    )
    batched = batched_backend.execute_batch(ansatz, parameter_sets, seeds=seeds)
    for parameters, seed, result in zip(parameter_sets, seeds, batched):
        reference = loop_backend.execute(ansatz, parameters=parameters, seed=seed)
        assert np.array_equal(result.states, reference.states)
        assert np.array_equal(result.probabilities(), reference.probabilities())
        assert np.array_equal(
            result.expectation_z([0, 1]), reference.expectation_z([0, 1])
        )


@pytest.fixture(scope="module")
def bound_model():
    scenario = get_scenario("seasonal")
    history = scenario.history("belem", 5, seed=13)
    model = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=6
    )
    model.bind_to_device(
        get_device_coupling("belem"), calibration=history[0]
    )
    rng = np.random.default_rng(29)
    features = rng.standard_normal((6, 16))
    labels = rng.integers(0, 4, 6)
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    return model, features, labels, noise_models


def test_full_path_day_sweep_bitmatches_evaluate_noisy_loop(bound_model):
    """``evaluate_noisy_batch`` over a shared binding (the day-stacked
    regime the runner drives) returns the exact per-day logits."""
    model, features, labels, noise_models = bound_model
    shared = np.asarray(model.parameters, dtype=float)
    batched = evaluate_noisy_batch(
        model,
        features,
        labels,
        noise_models,
        parameter_sets=[shared] * len(noise_models),
        shots=128,
        seeds=list(range(len(noise_models))),
    )
    for index, (noise_model, result) in enumerate(zip(noise_models, batched)):
        reference = evaluate_noisy(
            model,
            features,
            labels,
            noise_model,
            parameters=shared,
            shots=128,
            seed=index,
        )
        assert np.array_equal(result.logits, reference.logits)
        assert result.accuracy == reference.accuracy


def test_full_path_exact_expectations_bitmatch(bound_model):
    """Same contract without shot sampling (exact expectation values)."""
    model, features, labels, noise_models = bound_model
    batched = evaluate_noisy_batch(model, features, labels, noise_models)
    for noise_model, result in zip(noise_models, batched):
        reference = evaluate_noisy(model, features, labels, noise_model)
        assert np.array_equal(result.logits, reference.logits)
