"""Compilation digests join the evaluation cache key (PR 3)."""

import numpy as np

from repro.calibration import CalibrationSnapshot, generate_belem_history
from repro.qnn import QNNModel
from repro.runtime import model_digest
from repro.transpiler import Layout, PassManager, belem_coupling


def _model():
    return QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=3)


def test_model_digest_tracks_compilation_digest():
    history = generate_belem_history(2, seed=6)
    model = _model()
    model.bind_to_device(belem_coupling(), calibration=history[0])
    digest = model_digest(model)
    assert digest == model_digest(model)  # stable
    assert model.transpiled is not None


def test_incremental_recompile_preserves_cache_keys():
    """A boundary-reuse recompilation must keep yesterday's cache entries valid."""
    history = generate_belem_history(1, seed=6)
    base = history[0]
    nudged = CalibrationSnapshot.from_vector(
        base.to_vector() * (1.0 + 1e-9), base, date="nudged"
    )
    manager = PassManager()
    model = _model()
    model.bind_to_device(belem_coupling(), calibration=base, pass_manager=manager)
    day0 = model_digest(model)
    model.bind_to_device(belem_coupling(), calibration=nudged, pass_manager=manager)
    assert manager.stats.layout_reuses == 1
    assert model_digest(model) == day0  # same artifacts -> same key


def test_different_layout_changes_model_digest():
    history = generate_belem_history(1, seed=6)
    model = _model()
    model.bind_to_device(belem_coupling(), calibration=history[0])
    noise_aware = model_digest(model)
    model.bind_to_device(belem_coupling(), initial_layout=Layout((4, 3, 1, 0)))
    assert model_digest(model) != noise_aware


def test_parameters_still_dominate_digest():
    history = generate_belem_history(1, seed=6)
    model = _model()
    model.bind_to_device(belem_coupling(), calibration=history[0])
    assert model_digest(model) != model_digest(
        model, parameters=np.zeros(model.num_parameters)
    )
