"""EvaluationCache LRU bounding: capacity, eviction stats, persistence."""

from __future__ import annotations

import pytest

from repro.runtime import DEFAULT_CACHE_CAPACITY, EvaluationCache


def test_default_capacity_is_bounded():
    cache = EvaluationCache()
    assert cache.capacity == DEFAULT_CACHE_CAPACITY


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EvaluationCache(capacity=0)


def test_eviction_keeps_size_at_capacity():
    cache = EvaluationCache(capacity=3)
    for index in range(10):
        cache.put(f"k{index}", {"accuracy": float(index)})
    assert len(cache) == 3
    assert cache.evictions == 7
    # The three most recently written keys survive.
    assert cache.get("k9") == {"accuracy": 9.0}
    assert cache.get("k7") == {"accuracy": 7.0}
    assert cache.get("k0") is None


def test_get_refreshes_recency():
    cache = EvaluationCache(capacity=2)
    cache.put("a", {"accuracy": 1.0})
    cache.put("b", {"accuracy": 2.0})
    assert cache.get("a") is not None  # bump a to most-recently-used
    cache.put("c", {"accuracy": 3.0})  # evicts b, not a
    assert cache.get("a") is not None
    assert cache.get("b") is None
    assert cache.get("c") is not None


def test_stats_counts_hits_misses_evictions():
    cache = EvaluationCache(capacity=2)
    cache.put("a", {"accuracy": 1.0})
    cache.put("b", {"accuracy": 2.0})
    cache.put("c", {"accuracy": 3.0})
    cache.get("c")
    cache.get("a")  # evicted -> miss
    stats = cache.stats()
    assert stats == {
        "entries": 2,
        "capacity": 2,
        "hits": 1,
        "misses": 1,
        "evictions": 1,
        "hit_rate": 0.5,
    }


def test_persistence_respects_capacity_and_keeps_newest(tmp_path):
    path = tmp_path / "cache.jsonl"
    writer = EvaluationCache(path=path, capacity=10)
    for index in range(6):
        writer.put(f"k{index}", {"accuracy": float(index)})
    # Reload with a smaller bound: the most recently appended entries win.
    reader = EvaluationCache(path=path, capacity=2)
    assert len(reader) == 2
    assert reader.get("k5") == {"accuracy": 5.0}
    assert reader.get("k4") == {"accuracy": 4.0}
    assert reader.get("k0") is None
    # The file itself keeps the full append-only history.
    assert sum(1 for _ in path.open()) == 6
    # Load-time trims are not runtime evictions.
    assert reader.evictions == 0


def test_eviction_never_serves_stale_data():
    """An evicted key re-misses; a later put serves the new value."""
    cache = EvaluationCache(capacity=1)
    cache.put("a", {"accuracy": 0.1})
    cache.put("b", {"accuracy": 0.2})  # evicts a
    assert cache.get("a") is None
    cache.put("a", {"accuracy": 0.9})
    assert cache.get("a") == {"accuracy": 0.9}
