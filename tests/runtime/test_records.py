"""Crash-safety of the JSONL run-record log (regression for torn appends)."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import ReproError
from repro.protocol import RunRecord
from repro.runtime import RunRecordLog, load_run_records


def _write(path, count=3, **kwargs):
    log = RunRecordLog(path, **kwargs)
    records = [
        RunRecord(experiment="fig2", index=index, created_at=float(index))
        for index in range(count)
    ]
    log.extend(records)
    return records


def test_load_tolerates_truncated_trailing_line(tmp_path, caplog):
    """The signature of a SIGKILL mid-append: drop the torn line, warn."""
    path = tmp_path / "runs.jsonl"
    written = _write(path, count=3)
    intact = path.read_text()
    torn = intact.rstrip("\n")[: len(intact) - 20]  # tear the final record
    path.write_text(torn)
    with caplog.at_level("WARNING"):
        records = load_run_records(path)
    assert [r.index for r in records] == [0, 1]
    assert records == written[:2]
    assert any("truncated trailing" in message for message in caplog.messages)


def test_load_raises_on_mid_file_corruption(tmp_path):
    """Damage before the final line is corruption, not a torn append."""
    path = tmp_path / "runs.jsonl"
    _write(path, count=3)
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-15]  # corrupt a non-trailing record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ReproError, match="line 2"):
        load_run_records(path)


def test_fsync_policy_is_honoured(tmp_path, monkeypatch):
    synced = []
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
    _write(tmp_path / "durable.jsonl", count=2)
    assert len(synced) == 1  # one batched extend -> one fsync
    _write(tmp_path / "fast.jsonl", count=2, fsync=False)
    assert len(synced) == 1  # unchanged: fsync=False skips the sync


def test_empty_batch_writes_nothing(tmp_path):
    path = tmp_path / "runs.jsonl"
    RunRecordLog(path).extend([])
    assert not path.exists()
    assert load_run_records(path) == []
