"""The durable run store: WAL persistence, idempotent puts, resume reads."""

from __future__ import annotations

import threading

import pytest

from repro.protocol import (
    FleetCellResult,
    FleetRunManifest,
    RunRecord,
    TelemetrySnapshot,
)
from repro.runtime import MESSAGE_TABLES, RunStore, StoreError, fleet_cell_digest


def _manifest(run_id="fleet-abc", config_digest="cfg-1") -> FleetRunManifest:
    return FleetRunManifest(
        run_id=run_id,
        config_digest=config_digest,
        devices=["ring_5"],
        scenarios=["calm"],
        dataset_name="mnist4",
        seed=7,
        chunk_days=4,
        scale={"online_days": 2},
    )


def _cell(device="ring_5", scenario="calm") -> FleetCellResult:
    return FleetCellResult(
        device=device,
        scenario=scenario,
        days=2,
        accuracy=[0.5, 0.75],
        actions={"refresh": 2},
    )


def test_store_opens_in_wal_mode(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        assert store.journal_mode == "wal"


def test_put_get_roundtrip_for_every_table(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        store.begin_run(_manifest())
        cell = _cell()
        digest = store.put("fleet-abc", cell)
        assert store.get("fleet-abc", "fleet.cell.result", digest) == cell
        assert store.get("fleet-abc", "fleet.cell.result", "missing") is None
        record = RunRecord(experiment="fig2", created_at=1.0)
        store.put("fleet-abc", record)
        snapshot = TelemetrySnapshot(swaps={"qnn:refresh": 3})
        store.put("fleet-abc", snapshot)
        assert store.count("run.record") == 1
        assert store.count("serving.telemetry.snapshot", "fleet-abc") == 1


def test_put_is_idempotent_on_the_digest_key(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        cell = _cell()
        key = fleet_cell_digest("cfg-1", cell.device, cell.scenario)
        store.put("fleet-abc", cell, digest=key)
        store.put("fleet-abc", cell, digest=key)
        assert store.count("fleet.cell.result", "fleet-abc") == 1
        assert list(store.completed_cells("fleet-abc")) == [key]


def test_unknown_message_family_raises(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        with pytest.raises(StoreError, match="no store table"):
            store.put("fleet-abc", _manifest())  # manifests live in `runs`
        with pytest.raises(StoreError):
            store.count("fleet.run.manifest")
        assert "fleet.run.manifest" not in MESSAGE_TABLES


def test_begin_run_reattaches_and_guards_config_digest(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        first = store.begin_run(_manifest())
        again = store.begin_run(_manifest())
        assert again == first  # re-attach returns the stored manifest
        with pytest.raises(StoreError, match="refusing to resume"):
            store.begin_run(_manifest(config_digest="cfg-OTHER"))
        assert store.run_ids() == ["fleet-abc"]


def test_mark_run_updates_status_durably(tmp_path):
    path = tmp_path / "runs.sqlite"
    with RunStore(path) as store:
        store.begin_run(_manifest())
        store.mark_run("fleet-abc", "complete")
        with pytest.raises(StoreError, match="not in the store"):
            store.mark_run("fleet-ghost", "complete")
    with RunStore(path) as reopened:  # durable across connections
        assert reopened.manifest("fleet-abc").status == "complete"
        with pytest.raises(StoreError):
            reopened.manifest("fleet-ghost")


def test_two_concurrent_writers_share_one_wal_store(tmp_path):
    """Two connections (as two processes would hold) interleave safely."""
    path = tmp_path / "runs.sqlite"
    rows_per_writer = 50
    errors = []

    def writer(writer_id: int) -> None:
        try:
            with RunStore(path) as store:
                for index in range(rows_per_writer):
                    store.put(
                        "fleet-abc",
                        RunRecord(
                            experiment=f"writer{writer_id}",
                            index=index,
                            created_at=float(index),
                        ),
                    )
        except Exception as error:  # pragma: no cover - failure detail
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    with RunStore(path) as store:
        assert store.count("run.record", "fleet-abc") == 2 * rows_per_writer
        experiments = {
            record.experiment
            for record in store.messages("fleet-abc", "run.record").values()
        }
        assert experiments == {"writer0", "writer1"}


def test_fleet_cell_digest_is_stable_and_coordinate_sensitive():
    key = fleet_cell_digest("cfg", "ring_5", "calm")
    assert key == fleet_cell_digest("cfg", "ring_5", "calm")
    assert key != fleet_cell_digest("cfg", "ring_5", "jump")
    assert key != fleet_cell_digest("other", "ring_5", "calm")
