"""Lifecycle tests for the persistent evaluation worker pool.

Covers the contracts the ``pool`` runner mode leans on: workers stay warm
across :meth:`~repro.runtime.workers.WorkerPool.run_chunks` calls (same
PIDs, model shipped once), shutdown drains in-flight chunks, a crashed
worker is respawned without losing the run, and every shared-memory block
is released on close.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.exceptions import ReproError
from repro.qnn import QNNModel, evaluate_noisy
from repro.runtime import WorkerPool
from repro.runtime.workers import _CRASH_KEY
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="module")
def workload():
    """A small 4-day belem workload plus its sequential reference."""
    rng = np.random.default_rng(23)
    history = generate_belem_history(4, seed=11)
    model = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=3
    )
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=40, seed=9)
    features, labels = dataset.test_features[:4], dataset.test_labels[:4]
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    parameters = rng.uniform(-np.pi, np.pi, model.num_parameters)
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(4)]
    reference = [
        evaluate_noisy(
            model, features, labels, noise_model,
            parameters=parameters, shots=64, seed=seed,
        ).accuracy
        for noise_model, seed in zip(noise_models, seeds)
    ]
    return model, features, labels, noise_models, parameters, seeds, reference


def _payloads(noise_models, parameters, seeds, chunk_days=2):
    """Chunk the workload into ``run_chunks`` payload dicts."""
    indices = list(range(len(noise_models)))
    chunks = [
        indices[start : start + chunk_days]
        for start in range(0, len(indices), chunk_days)
    ]
    return [
        {
            "noise_models": [noise_models[i] for i in chunk],
            "parameter_sets": [parameters for _ in chunk],
            "shots": 64,
            "seeds": [seeds[i] for i in chunk],
            "max_batch_bytes": 64 * 1024 * 1024,
        }
        for chunk in chunks
    ], chunks


def _flatten(results, chunks, count):
    flat = [None] * count
    for chunk, (accuracies, _duration) in zip(chunks, results):
        for index, value in zip(chunk, accuracies):
            flat[index] = value
    return flat


def test_warm_workers_are_reused_across_calls(workload):
    model, features, labels, noise_models, parameters, seeds, reference = workload
    payloads, chunks = _payloads(noise_models, parameters, seeds)
    with WorkerPool(max_workers=1) as pool:
        first = pool.run_chunks(model, features, labels, payloads)
        pids_after_first = pool.pids()
        second = pool.run_chunks(model, features, labels, payloads)
        pids_after_second = pool.pids()

        assert _flatten(first, chunks, 4) == reference
        assert _flatten(second, chunks, 4) == reference
        # Same long-lived process serves both calls...
        assert pids_after_first == pids_after_second
        assert pool.stats.workers_spawned == 1
        assert pool.stats.workers_respawned == 0
        # ...and the model pickles over the wire exactly once: the second
        # call strips model_bytes because the worker already holds it.
        assert pool.stats.models_shipped == 1
        assert pool.stats.tasks_completed == 2 * len(payloads)
        # One eval subset → one features block + one labels block, cached
        # across calls by content digest.
        assert pool.stats.arrays_shared == 2


def test_graceful_shutdown_waits_for_in_flight_chunks(workload):
    model, features, labels, noise_models, parameters, seeds, reference = workload
    payloads, chunks = _payloads(noise_models, parameters, seeds)
    pool = WorkerPool(max_workers=1)
    results: list = []

    def run():
        results.append(pool.run_chunks(model, features, labels, payloads))

    runner_thread = threading.Thread(target=run)
    runner_thread.start()
    time.sleep(0.05)  # let run_chunks take the pool lock and dispatch
    pool.close(wait=True)  # must block until the in-flight call drains
    runner_thread.join(timeout=60.0)

    assert not runner_thread.is_alive()
    assert pool.closed
    assert results, "run_chunks must complete before close() returns"
    assert _flatten(results[0], chunks, 4) == reference
    assert pool.pids() == []
    with pytest.raises(ReproError):
        pool.run_chunks(model, features, labels, payloads)


def test_worker_crash_respawns_without_losing_the_run(workload):
    model, features, labels, noise_models, parameters, seeds, reference = workload
    payloads, chunks = _payloads(noise_models, parameters, seeds)
    # The crash hook kills the worker before it evaluates the first chunk;
    # the parent must respawn it and resubmit the chunk (crash-free).
    payloads[0] = dict(payloads[0], **{_CRASH_KEY: True})
    with WorkerPool(max_workers=1, poll_seconds=0.1) as pool:
        results = pool.run_chunks(model, features, labels, payloads)
        assert _flatten(results, chunks, 4) == reference
        assert pool.stats.workers_respawned >= 1
        assert pool.stats.tasks_resubmitted >= 1
        # The respawned worker still finished every chunk.
        assert pool.stats.tasks_completed == len(payloads)


def test_shared_memory_blocks_released_on_close(workload):
    model, features, labels, noise_models, parameters, seeds, _ = workload
    payloads, _chunks = _payloads(noise_models, parameters, seeds)
    pool = WorkerPool(max_workers=1)
    pool.run_chunks(model, features, labels, payloads)
    names = pool.shared_memory_names()
    assert len(names) == 2  # features + labels
    shm_root = Path("/dev/shm")
    if shm_root.exists():
        for name in names:
            assert (shm_root / name.lstrip("/")).exists()
    pool.close()
    assert pool.shared_memory_names() == []
    if shm_root.exists():
        for name in names:
            assert not (shm_root / name.lstrip("/")).exists()


def test_close_is_idempotent_and_context_managed(workload):
    model, features, labels, noise_models, parameters, seeds, _ = workload
    payloads, _chunks = _payloads(noise_models, parameters, seeds, chunk_days=4)
    pool = WorkerPool(max_workers=1)
    pool.run_chunks(model, features, labels, payloads)
    pool.close()
    pool.close()  # second close is a no-op
    assert pool.closed
