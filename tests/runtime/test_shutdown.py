"""Graceful shutdown: interrupts cancel pending chunks and drain workers."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.runtime.runner as runner_module
from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import QNNModel
from repro.runtime import ExperimentRunner
from repro.simulator import NoiseModel


@pytest.fixture(scope="module")
def small_harness():
    history = generate_belem_history(4, seed=4)
    model = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=2
    )
    from repro.transpiler import belem_coupling

    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=40, seed=5)
    features, labels = dataset.test_features[:4], dataset.test_labels[:4]
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    return model, features, labels, noise_models


def test_interrupt_cancels_pending_chunks_and_drains_workers(
    small_harness, monkeypatch
):
    """A KeyboardInterrupt mid-run must not leave orphaned workers behind,
    and chunks that have not started must never start."""
    model, features, labels, noise_models = small_harness
    calls = []

    def interrupting(*args, **kwargs):
        calls.append(time.monotonic())
        if len(calls) == 1:
            raise KeyboardInterrupt
        # The single worker may dequeue one more chunk before the main
        # thread reacts to the interrupt; holding it briefly gives the
        # cancellation a deterministic window to cover the rest.
        time.sleep(0.2)
        chunk_size = len(args[3])
        return [0.0] * chunk_size, 0.0

    monkeypatch.setattr(runner_module, "_evaluate_chunk", interrupting)
    runner = ExperimentRunner(mode="thread", max_workers=1, chunk_days=1)
    before = threading.active_count()
    with pytest.raises(KeyboardInterrupt):
        runner.evaluate_days(model, features, labels, noise_models)
    # The interrupt fires in chunk 1; at most one further chunk can slip
    # into the single worker before the rest are cancelled unstarted.
    assert len(calls) <= 2
    # The pool was shut down synchronously: no orphaned worker threads.
    deadline = time.monotonic() + 5.0
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before


def test_failed_chunk_propagates_after_draining(small_harness, monkeypatch):
    """Ordinary worker exceptions follow the same cancel-and-drain path."""
    model, features, labels, noise_models = small_harness

    def broken(*args, **kwargs):
        raise RuntimeError("chunk exploded")

    monkeypatch.setattr(runner_module, "_evaluate_chunk", broken)
    runner = ExperimentRunner(mode="thread", max_workers=2, chunk_days=1)
    with pytest.raises(RuntimeError, match="chunk exploded"):
        runner.evaluate_days(model, features, labels, noise_models)


def test_thread_mode_still_matches_serial_after_refactor(small_harness):
    """The submit-based fan-out preserves ordering and numbers."""
    model, features, labels, noise_models = small_harness
    serial = ExperimentRunner(mode="serial", chunk_days=1)
    threaded = ExperimentRunner(mode="thread", max_workers=2, chunk_days=1)
    a = serial.evaluate_days(model, features, labels, noise_models)
    b = threaded.evaluate_days(model, features, labels, noise_models)
    assert np.array_equal(a, b)


def test_runner_map_uses_pool_fan_out():
    runner = ExperimentRunner(mode="thread", max_workers=2)
    assert runner.map(lambda x: x * 2, [1, 2, 3, 4]) == [2, 4, 6, 8]
