"""The ``python -m repro.experiments`` command-line entry point."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, SCALES, build_parser, main


def test_registry_covers_every_harness():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9",
        "table1", "table2", "longitudinal",
    }
    assert set(SCALES) == {"paper", "bench", "test"}


def test_parser_defaults():
    args = build_parser().parse_args(["fig1"])
    assert args.scale == "bench"
    assert args.runner_mode == "thread"
    assert args.chunk_days == 16


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5"])


def test_main_runs_fig1_and_writes_json(tmp_path, capsys):
    out = tmp_path / "fig1.json"
    code = main(["fig1", "--scale", "test", "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "fig1"
    assert payload["scale"] == "test"
    assert "fluctuation_summary" in payload["summary"]
    printed = capsys.readouterr().out
    assert '"experiment": "fig1"' in printed


def test_main_runs_fig3_with_records(tmp_path):
    out = tmp_path / "fig3.json"
    code = main(["fig3", "--scale", "test", "--runner-mode", "serial", "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["summary"]["breakpoint_gain"] > 0
