"""The ``python -m repro.experiments`` command-line entry point."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, SCALES, build_parser, main


def test_registry_covers_every_harness():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9",
        "table1", "table2", "longitudinal", "serve", "fleet",
    }
    assert set(SCALES) == {"paper", "bench", "test"}


def test_parser_defaults():
    args = build_parser().parse_args(["fig1"])
    assert args.scale == "bench"
    # Unset on the parser so main() can resolve per-harness defaults
    # (thread for the shared runner, serial for fleet cells).
    assert args.runner_mode is None
    assert args.chunk_days == 16


def test_parser_accepts_pool_runner_mode():
    args = build_parser().parse_args(["fig2", "--runner-mode", "pool"])
    assert args.runner_mode == "pool"


def test_parser_serving_options():
    args = build_parser().parse_args(
        ["serve", "--requests", "64", "--max-batch", "8", "--max-latency-ms", "1.5"]
    )
    assert args.requests == 64
    assert args.max_batch == 8
    assert args.max_latency_ms == 1.5
    assert args.observe_every is None
    assert args.shards == 1
    assert args.models == 1
    assert args.arrival_rate is None
    sharded = build_parser().parse_args(
        ["serve", "--shards", "4", "--models", "4", "--arrival-rate", "200"]
    )
    assert sharded.shards == 4
    assert sharded.models == 4
    assert sharded.arrival_rate == 200.0


def test_parser_fleet_options():
    args = build_parser().parse_args(
        ["fleet", "--devices", "ring_5,line_5", "--scenarios", "calm,storm"]
    )
    assert args.devices == "ring_5,line_5"
    assert args.scenarios == "calm,storm"
    assert args.cell_workers is None


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5"])


def test_main_runs_fig1_and_writes_json(tmp_path, capsys):
    out = tmp_path / "fig1.json"
    code = main(["fig1", "--scale", "test", "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "fig1"
    assert payload["scale"] == "test"
    assert "fluctuation_summary" in payload["summary"]
    printed = capsys.readouterr().out
    assert '"experiment": "fig1"' in printed


def test_main_runs_fig3_with_records(tmp_path):
    out = tmp_path / "fig3.json"
    code = main(["fig3", "--scale", "test", "--runner-mode", "serial", "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["summary"]["breakpoint_gain"] > 0


def test_list_devices_prints_library(capsys):
    assert main(["--list-devices"]) == 0
    printed = capsys.readouterr().out
    for expected in ("belem", "jakarta", "ring_5", "grid_3x3", "heavy_hex_27"):
        assert expected in printed


def test_missing_experiment_name_errors():
    with pytest.raises(SystemExit):
        main([])


def test_fixed_device_experiments_reject_device_flag():
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "test", "--device", "ring_5"])


def test_non_serve_experiments_reject_serving_flags():
    for flag in (
        ["--requests", "64"],
        ["--max-batch", "4"],
        ["--max-latency-ms", "1.0"],
        ["--observe-every", "8"],
        ["--shards", "2"],
        ["--models", "2"],
        ["--arrival-rate", "100"],
    ):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "test", *flag])


def test_serve_rejects_runner_flags():
    for flag in (
        ["--runner-mode", "process"],
        ["--workers", "4"],
        ["--chunk-days", "2"],
        ["--records", "r.jsonl"],
        ["--cache", "c.jsonl"],
    ):
        with pytest.raises(SystemExit):
            main(["serve", "--scale", "test", *flag])


def test_non_fleet_experiments_reject_fleet_flags():
    for flag in (
        ["--devices", "ring_5"],
        ["--scenarios", "calm"],
        ["--cell-workers", "2"],
    ):
        with pytest.raises(SystemExit):
            main(["fig1", "--scale", "test", *flag])


def test_fleet_rejects_inapplicable_flags():
    # --runner-mode is NOT in this list: fleet cells honour it (the CI
    # smoke run drives the persistent pool through `fleet --runner-mode
    # pool`); the remaining runner knobs still only shape the idle
    # top-level runner and are rejected.
    for flag in (
        ["--device", "ring_5"],  # the grid flag is --devices
        ["--requests", "8"],
        ["--workers", "2"],
        ["--chunk-days", "2"],
        ["--cache", "c.jsonl"],
    ):
        with pytest.raises(SystemExit):
            main(["fleet", "--scale", "test", *flag])


def test_list_scenarios_prints_library(capsys):
    assert main(["--list-scenarios"]) == 0
    printed = capsys.readouterr().out
    for expected in ("calm", "seasonal", "jump", "storm", "recovery"):
        assert expected in printed


@pytest.mark.parametrize("device", ["ring_5", "grid_2x3", "line_7"])
def test_longitudinal_runs_on_device_library_topologies(tmp_path, device):
    """The longitudinal harness must run end-to-end on library devices."""
    out = tmp_path / f"longitudinal_{device}.json"
    code = main(
        [
            "longitudinal",
            "--scale",
            "test",
            "--device",
            device,
            "--runner-mode",
            "serial",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["device"] == device
    rows = payload["summary"]["rows"]
    assert {row["method"] for row in rows} == {"baseline", "qucad"}
    for row in rows:
        assert 0.0 <= row["mean_accuracy"] <= 1.0
    compiler = payload["compiler"]
    assert compiler["compile_calls"] >= 1
    assert 0.0 <= compiler["pass_cache_hit_rate"] <= 1.0


def test_serve_runs_end_to_end_on_a_library_device(tmp_path):
    """The serving harness: load generation + drift-driven hot-swaps."""
    out = tmp_path / "serve.json"
    code = main(
        [
            "serve",
            "--scale",
            "test",
            "--device",
            "ring_5",
            "--requests",
            "24",
            "--max-batch",
            "6",
            "--observe-every",
            "8",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    summary = payload["summary"]
    assert summary["device"] == "ring_5"
    load = summary["load"]
    assert load["requests"] == load["completed"] == 24
    assert load["throughput_rps"] > 0
    assert load["swaps"], "drift snapshots must reach the watcher"
    serving = summary["serving"]
    assert serving["telemetry"]["models"]["qnn"]["completed"] == 24
    assert serving["scheduler"]["flushes"] >= 4
    assert serving["deployments"]["qnn"]["versions_published"] >= 2


def test_sharded_serve_runs_end_to_end(tmp_path):
    """The sharded tier through the CLI: open-loop load over 2 shards."""
    out = tmp_path / "sharded.json"
    code = main(
        [
            "serve",
            "--scale",
            "test",
            "--device",
            "ring_5",
            "--requests",
            "24",
            "--max-batch",
            "6",
            "--shards",
            "2",
            "--models",
            "2",
            "--arrival-rate",
            "400",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    summary = payload["summary"]
    assert summary["shards"] == 2
    assert summary["models"] == ["qnn-0", "qnn-1"]
    load = summary["load"]
    assert load["mode"] == "open"
    assert load["requests"] == load["completed"] == 24, "zero lost requests"
    assert load["offered_rps"] > 0
    serving = summary["serving"]
    assert set(serving["telemetry"]["shards"]) == {"0", "1"}
    total = sum(
        stats["completed"] for stats in serving["telemetry"]["models"].values()
    )
    assert total == 24
    assert serving["supervisor"]["shards_spawned"] >= 2


def test_fleet_runs_a_grid_end_to_end(tmp_path):
    """The fleet harness: ≥4 (device × scenario) cells with full reports."""
    out = tmp_path / "fleet.json"
    records = tmp_path / "fleet_runs.jsonl"
    code = main(
        [
            "fleet",
            "--scale",
            "test",
            "--devices",
            "ring_5,line_5",
            "--scenarios",
            "calm,jump",
            "--records",
            str(records),
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    report = payload["summary"]
    assert report["summary"]["cells"] == 4
    assert report["summary"]["devices"] == ["line_5", "ring_5"]
    assert report["summary"]["scenarios"] == ["calm", "jump"]
    for cell in report["cells"]:
        assert 0.0 <= cell["mean_accuracy"] <= 1.0
        assert sum(cell["actions"].values()) == cell["days"]
        assert cell["runner"]["cache"]["entries"] >= 1
        assert "pass_cache_hit_rate" in cell["compiler"]
    from repro.runtime import load_run_records

    rows = load_run_records(records)
    assert {row.scenario for row in rows} == {"calm", "jump"}


def test_cache_stats_appear_in_runner_block(tmp_path):
    """--cache surfaces hit/miss/eviction counters in the stats block."""
    cache_path = tmp_path / "cache.jsonl"
    out = tmp_path / "fig2.json"
    code = main(
        [
            "fig2",
            "--scale",
            "test",
            "--runner-mode",
            "serial",
            "--cache",
            str(cache_path),
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    cache_stats = payload["runner"]["cache"]
    assert cache_stats is not None
    assert {"entries", "capacity", "hits", "misses", "evictions", "hit_rate"} <= set(
        cache_stats
    )
    assert cache_stats["entries"] >= 1
