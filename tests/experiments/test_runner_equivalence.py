"""The refactored harnesses must reproduce the historical per-day loops.

``run_longitudinal`` (and everything built on it) moved from a sequential
evaluate-one-day-at-a-time loop onto the batched/parallel runtime; these
tests re-implement the pre-runtime loop verbatim and require equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import make_method
from repro.experiments import TEST_SCALE, prepare_experiment, run_fig2, run_longitudinal
from repro.qnn.evaluation import evaluate_noisy
from repro.runtime import ExperimentRunner
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def setup():
    return prepare_experiment("mnist4", scale=TEST_SCALE)


def _legacy_longitudinal(setup, methods, shots):
    """The pre-runtime evaluation loop, verbatim."""
    online = setup.online_history
    noise_models = setup.noise_models(online)
    eval_subset = setup.eval_subset()
    context = setup.method_context()
    rng = ensure_rng(setup.scale.seed)
    per_method = {}
    for method in methods:
        method.prepare(context)
        accuracies = []
        for snapshot, noise_model in zip(online, noise_models):
            parameters = method.parameters_for_day(snapshot)
            accuracies.append(
                evaluate_noisy(
                    setup.base_model,
                    eval_subset.test_features,
                    eval_subset.test_labels,
                    noise_model,
                    parameters=parameters,
                    shots=shots,
                    seed=int(rng.integers(0, 2**31 - 1)),
                ).accuracy
            )
        per_method[method.name] = np.asarray(accuracies)
    return per_method


@pytest.mark.parametrize("mode", ["serial", "thread"])
def test_run_longitudinal_matches_legacy_loop(setup, mode):
    shots = setup.scale.shots
    legacy = _legacy_longitudinal(
        setup, [make_method("baseline"), make_method("noise_aware_train_once")], shots
    )
    result = run_longitudinal(
        setup,
        [make_method("baseline"), make_method("noise_aware_train_once")],
        runner=ExperimentRunner(mode=mode, chunk_days=2),
    )
    for name, series in legacy.items():
        assert np.array_equal(result.run_for(name).daily_accuracy, series)


def test_run_fig2_deterministic_across_runner_modes(setup):
    serial = run_fig2(TEST_SCALE, setup=setup, runner=ExperimentRunner(mode="serial"))
    threaded = run_fig2(
        TEST_SCALE, setup=setup, runner=ExperimentRunner(mode="thread", chunk_days=2)
    )
    assert np.array_equal(
        serial.noise_aware_training_accuracy, threaded.noise_aware_training_accuracy
    )
    assert np.array_equal(serial.compression_accuracy, threaded.compression_accuracy)
    assert serial.dates == threaded.dates
