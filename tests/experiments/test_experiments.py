"""Tests for the experiment configuration, reporting, and light harnesses."""

import numpy as np
import pytest

from repro.experiments import (
    BENCH_SCALE,
    DATASET_MODEL_SETTINGS,
    ExperimentScale,
    PAPER_SCALE,
    TEST_SCALE,
    format_series,
    format_table,
    percent,
    run_fig1,
    run_fig3,
)
from repro.experiments.config import ExperimentScale as ScaleClass


def test_paper_scale_matches_paper_numbers():
    assert PAPER_SCALE.offline_days == 243
    assert PAPER_SCALE.online_days == 146
    assert PAPER_SCALE.num_clusters == 6


def test_scales_are_ordered_by_cost():
    assert TEST_SCALE.offline_days < BENCH_SCALE.offline_days < PAPER_SCALE.offline_days
    assert TEST_SCALE.eval_samples < PAPER_SCALE.eval_samples


def test_scale_overrides_and_train_config():
    scale = ExperimentScale().with_overrides(online_days=10, shots=None)
    assert scale.online_days == 10
    assert scale.shots is None
    config = scale.train_config(epochs=5)
    assert config.epochs == 5
    assert isinstance(scale, ScaleClass)


def test_dataset_model_settings_cover_table1_datasets():
    assert set(DATASET_MODEL_SETTINGS) == {"mnist4", "iris", "seismic"}
    assert DATASET_MODEL_SETTINGS["iris"]["repeats"] == 3
    assert DATASET_MODEL_SETTINGS["mnist4"]["num_classes"] == 4


def test_format_table_renders_all_rows():
    rows = [
        {"method": "baseline", "accuracy": 0.5},
        {"method": "qucad", "accuracy": 0.76, "extra": 3},
    ]
    text = format_table(rows, [("method", "Method"), ("accuracy", "Acc"), ("extra", "Extra")])
    lines = text.splitlines()
    assert len(lines) == 4  # header + separator + 2 rows
    assert "qucad" in text
    assert "-" in lines[1]


def test_format_series_and_percent():
    text = format_series("accuracy", ["day1", "day2"], [0.5, 0.75])
    assert "day1" in text and "0.7500" in text
    assert percent(0.1234) == "12.34%"


def test_run_fig1_series_and_summary():
    result = run_fig1(TEST_SCALE)
    kinds = result.kinds()
    assert set(kinds) == {"single_qubit", "cnot", "readout"}
    assert len(kinds["cnot"]) == 4  # belem has four couplers
    summary = result.fluctuation_summary()
    for stats in summary.values():
        assert stats["max"] >= stats["min"] > 0
        assert stats["max_over_min"] >= 1.0
    assert len(result.dates) == TEST_SCALE.offline_days + TEST_SCALE.online_days


def test_run_fig3_detects_breakpoints():
    result = run_fig3(TEST_SCALE, grid_points=9)
    assert result.ideal_surface.shape == (9, 9)
    assert result.noisy_surface.shape == (9, 9)
    # Noise shrinks expectations, so the noisy surface has smaller magnitude.
    assert np.abs(result.noisy_surface).mean() < np.abs(result.ideal_surface).mean() + 1e-9
    # Deviation is smaller on the compression levels (the breakpoints).
    assert result.breakpoint_gain() > 0
