"""Tests for the Gate instruction type and registry."""

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.gates import (
    CONTROLLED_ROTATION_GATES,
    GATE_REGISTRY,
    Gate,
    PARAMETRIC_GATES,
    ROTATION_GATES,
)


def test_registry_contains_core_gates():
    for name in ("x", "sx", "rz", "cx", "cry", "swap"):
        assert name in GATE_REGISTRY


def test_rotation_gate_groups_are_disjoint_from_controlled():
    assert not (ROTATION_GATES & CONTROLLED_ROTATION_GATES)
    assert ROTATION_GATES | CONTROLLED_ROTATION_GATES <= PARAMETRIC_GATES


def test_unknown_gate_name_rejected():
    with pytest.raises(GateError):
        Gate("not_a_gate", (0,))


def test_wrong_qubit_count_rejected():
    with pytest.raises(GateError):
        Gate("cx", (0,))
    with pytest.raises(GateError):
        Gate("x", (0, 1))


def test_duplicate_qubits_rejected():
    with pytest.raises(GateError):
        Gate("cx", (1, 1))


def test_fixed_gate_refuses_parameter():
    with pytest.raises(GateError):
        Gate("x", (0,), param=0.5)


def test_parametric_gate_requires_param_or_ref():
    with pytest.raises(GateError):
        Gate("ry", (0,))
    Gate("ry", (0,), param=0.3)
    Gate("ry", (0,), param_ref=2)


def test_matrix_of_bound_gate():
    gate = Gate("ry", (0,), param=np.pi)
    assert gate.matrix().shape == (2, 2)


def test_matrix_of_unbound_gate_raises():
    gate = Gate("ry", (0,), param_ref=0)
    with pytest.raises(GateError):
        gate.matrix()


def test_derivative_matrix_requires_parametric():
    with pytest.raises(GateError):
        Gate("x", (0,)).derivative_matrix()


def test_bind_returns_new_gate():
    gate = Gate("crx", (0, 1), param_ref=3)
    bound = gate.bind(1.25)
    assert bound.param == pytest.approx(1.25)
    assert bound.param_ref == 3
    assert gate.param is None


def test_bind_fixed_gate_raises():
    with pytest.raises(GateError):
        Gate("cx", (0, 1)).bind(0.5)


def test_remap_changes_qubits():
    gate = Gate("cx", (0, 1))
    remapped = gate.remap({0: 3, 1: 2})
    assert remapped.qubits == (3, 2)


def test_is_parametric_and_num_qubits_properties():
    assert Gate("rz", (0,), param=0.1).is_parametric
    assert not Gate("h", (0,)).is_parametric
    assert Gate("cry", (0, 1), param=0.1).num_qubits == 2


def test_gates_are_hashable_and_frozen():
    gate = Gate("x", (0,))
    with pytest.raises(Exception):
        gate.name = "y"  # type: ignore[misc]
    assert hash(gate) == hash(Gate("x", (0,)))
