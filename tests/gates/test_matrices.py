"""Tests for the gate matrix definitions."""

import numpy as np
import pytest

from repro.gates import matrices as mat
from repro.utils.linalg import is_unitary

FIXED_MATRICES = {
    "I2": mat.I2,
    "X": mat.X,
    "Y": mat.Y,
    "Z": mat.Z,
    "H": mat.H,
    "S": mat.S,
    "SDG": mat.SDG,
    "T": mat.T,
    "TDG": mat.TDG,
    "SX": mat.SX,
    "SXDG": mat.SXDG,
    "CX": mat.CX,
    "CZ": mat.CZ,
    "CY": mat.CY,
    "SWAP": mat.SWAP,
}

PARAMETRIC = [
    (mat.rx, mat.drx),
    (mat.ry, mat.dry),
    (mat.rz, mat.drz),
    (mat.phase_gate, mat.dphase_gate),
    (mat.crx, mat.dcrx),
    (mat.cry, mat.dcry),
    (mat.crz, mat.dcrz),
    (mat.cphase, mat.dcphase),
    (mat.rzz, mat.drzz),
]

ANGLES = [0.0, 0.3, np.pi / 2, np.pi, 1.7, -2.4, 3 * np.pi / 2, 2 * np.pi]


@pytest.mark.parametrize("name, matrix", FIXED_MATRICES.items())
def test_fixed_matrices_are_unitary(name, matrix):
    assert is_unitary(matrix), f"{name} is not unitary"


@pytest.mark.parametrize("factory, _", PARAMETRIC)
@pytest.mark.parametrize("theta", ANGLES)
def test_parametric_matrices_are_unitary(factory, _, theta):
    assert is_unitary(factory(theta))


@pytest.mark.parametrize("factory, derivative", PARAMETRIC)
@pytest.mark.parametrize("theta", [0.2, 1.1, -0.7, 2.9])
def test_derivatives_match_finite_differences(factory, derivative, theta):
    epsilon = 1e-6
    numerical = (factory(theta + epsilon) - factory(theta - epsilon)) / (2 * epsilon)
    assert np.allclose(derivative(theta), numerical, atol=1e-6)


def test_pauli_relations():
    assert np.allclose(mat.X @ mat.X, mat.I2)
    assert np.allclose(mat.Y @ mat.Y, mat.I2)
    assert np.allclose(mat.Z @ mat.Z, mat.I2)
    assert np.allclose(mat.X @ mat.Y, 1j * mat.Z)


def test_sx_squares_to_x():
    assert np.allclose(mat.SX @ mat.SX, mat.X)


def test_hadamard_conjugates_z_to_x():
    assert np.allclose(mat.H @ mat.Z @ mat.H, mat.X)


def test_rotation_at_zero_is_identity():
    for factory in (mat.rx, mat.ry, mat.rz):
        assert np.allclose(factory(0.0), mat.I2)


def test_rotation_periodicity_up_to_phase():
    theta = 0.9
    for factory in (mat.rx, mat.ry, mat.rz):
        assert np.allclose(factory(theta + 4 * np.pi), factory(theta), atol=1e-9)
        assert np.allclose(factory(theta + 2 * np.pi), -factory(theta), atol=1e-9)


def test_rx_pi_is_x_up_to_phase():
    assert np.allclose(mat.rx(np.pi), -1j * mat.X)


def test_ry_pi_is_y_up_to_phase():
    assert np.allclose(mat.ry(np.pi), -1j * mat.Y)


def test_controlled_block_structure():
    theta = 0.7
    for controlled, single in ((mat.crx, mat.rx), (mat.cry, mat.ry), (mat.crz, mat.rz)):
        full = controlled(theta)
        assert np.allclose(full[:2, :2], np.eye(2))
        assert np.allclose(full[:2, 2:], 0)
        assert np.allclose(full[2:, :2], 0)
        assert np.allclose(full[2:, 2:], single(theta))


def test_cx_maps_10_to_11():
    state = np.zeros(4)
    state[2] = 1.0  # |10> with the control set
    assert np.allclose(mat.CX @ state, np.eye(4)[3])


def test_swap_exchanges_basis_states():
    state = np.zeros(4)
    state[1] = 1.0  # |01>
    assert np.allclose(mat.SWAP @ state, np.eye(4)[2])


def test_rzz_is_diagonal():
    matrix = mat.rzz(0.8)
    assert np.allclose(matrix, np.diag(np.diag(matrix)))
