"""Property tests: scheduler ordering, fairness, and completion guarantees.

Randomised request streams (seeded) against the un-threaded scheduler,
checking the invariants the serving layer promises regardless of arrival
pattern or policy:

* every submitted request resolves exactly once (no drops, no duplicates);
* per-model responses respect submission order (FIFO within a model);
* a flush never exceeds ``max_batch`` and never mixes models;
* flush scheduling is oldest-first across models (fairness: the backlogged
  model with the oldest waiting request is served first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import BatchPolicy, MicroBatchScheduler, ModelRegistry


@pytest.fixture()
def registry(bound_model, noise_model):
    registry = ModelRegistry()
    registry.publish("a", bound_model, noise_model=noise_model)
    registry.publish(
        "b",
        bound_model.copy(parameters=bound_model.parameters * 0.5, name="b"),
        noise_model=noise_model,
    )
    return registry


@pytest.mark.parametrize("trial", range(4))
def test_random_streams_complete_exactly_once_in_model_order(
    registry, features, trial
):
    rng = np.random.default_rng(100 + trial)
    max_batch = int(rng.integers(1, 6))
    scheduler = MicroBatchScheduler(
        registry,
        # max_latency 0: every flush_pending() call flushes everything
        # pending, so random flush points emulate arbitrary timer wake-ups.
        policy=BatchPolicy(max_batch=max_batch, max_latency_ms=0.0),
    )
    submissions = []  # (name, sequence) in submission order
    futures = []
    for _ in range(int(rng.integers(10, 30))):
        name = "a" if rng.random() < 0.5 else "b"
        sample = features[int(rng.integers(len(features)))]
        future = scheduler.submit(name, sample)
        submissions.append(name)
        futures.append(future)
        if rng.random() < 0.3:
            scheduler.flush_pending()
    scheduler.stop(drain=True)

    results = [future.result(timeout=0) for future in futures]
    # Exactly-once completion, matched to its own submission.
    assert all(future.done() for future in futures)
    assert [r.model for r in results] == submissions

    for name in ("a", "b"):
        model_results = [r for r in results if r.model == name]
        sequences = [r.sequence for r in model_results]
        assert sequences == sorted(sequences)  # FIFO within a model
        batch_ids = [r.batch_id for r in model_results]
        assert batch_ids == sorted(batch_ids)  # batches flushed in order
        for result in model_results:
            assert result.batch_size <= max_batch

    # A batch never mixes models.
    by_batch: dict[int, set] = {}
    for result in results:
        by_batch.setdefault(result.batch_id, set()).add(result.model)
    assert all(len(models) == 1 for models in by_batch.values())


def test_fairness_flushes_oldest_head_request_first(registry, features):
    """With two backlogged models, the older head request's model goes first."""
    scheduler = MicroBatchScheduler(
        registry, policy=BatchPolicy(max_batch=8, max_latency_ms=1e6)
    )
    late = [scheduler.submit("b", features[0])]  # b's head is oldest
    late += [scheduler.submit("a", sample) for sample in features[1:4]]
    scheduler.flush_pending(force=True)
    result_b = late[0].result(timeout=0)
    results_a = [future.result(timeout=0) for future in late[1:]]
    assert result_b.batch_id < min(r.batch_id for r in results_a)


def test_full_batches_flush_before_deadline(registry, features):
    """Reaching max_batch triggers a flush without waiting for the timer."""
    scheduler = MicroBatchScheduler(
        registry, policy=BatchPolicy(max_batch=3, max_latency_ms=1e6)
    )
    futures = [scheduler.submit("a", sample) for sample in features[:3]]
    flushed = scheduler.flush_pending()  # no force; the batch is full
    assert flushed == 1
    assert all(future.done() for future in futures)
    assert scheduler.stats.full_flushes == 1
    # A partial batch under a huge deadline stays pending without force.
    partial = scheduler.submit("a", features[3])
    assert scheduler.flush_pending() == 0
    assert not partial.done()
    scheduler.stop(drain=True)
    assert partial.done()
    assert scheduler.stats.drain_flushes == 1
