"""InferenceService end-to-end: threaded serving, hot-swap, telemetry, loadgen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import (
    BatchPolicy,
    InferenceService,
    LoadGenerator,
    ModelRegistry,
)
from repro.simulator import NoiseModel
from repro.transpiler.pipeline import PassManager


def _service(max_batch=4, max_latency_ms=2.0):
    return InferenceService(
        policy=BatchPolicy(max_batch=max_batch, max_latency_ms=max_latency_ms),
        pass_manager=PassManager(),
    )


def test_deploy_with_calibration_binds_and_derives_noise(bound_model, history):
    service = _service()
    version = service.deploy("qnn", bound_model, calibration=history[0])
    assert version.version == 1
    assert version.noise_model is not None
    assert version.compilation_digest is not None
    assert version.calibration_date == history[0].date


def test_deploy_rejects_conflicting_noise_inputs(bound_model, noise_model, history):
    service = _service()
    with pytest.raises(ServingError):
        service.deploy(
            "qnn", bound_model, calibration=history[0], noise_model=noise_model
        )


def test_threaded_serving_matches_direct_batches(bound_model, history, features):
    """Whatever windows the dispatch thread forms, replays are bit-identical."""
    service = _service(max_batch=4, max_latency_ms=1.0)
    service.deploy("qnn", bound_model, calibration=history[0])
    samples = features[:14]
    with service:
        results = service.predict_many("qnn", samples)

    assert len(results) == 14
    # Reconstruct the actual coalescing windows from the response metadata
    # and replay each as one direct forward_noisy_batch call.
    version = service.registry.get("qnn")
    by_batch: dict[int, list[int]] = {}
    for index, result in enumerate(results):
        by_batch.setdefault(result.batch_id, []).append(index)
    for indices in by_batch.values():
        indices.sort(key=lambda i: results[i].sequence)
        direct = version.model.forward_noisy_batch(
            np.stack([samples[i] for i in indices]), [version.noise_model]
        )[0]
        served = np.stack([results[i].logits for i in indices])
        assert np.array_equal(served, direct)


def test_hot_swap_under_load_never_drops_or_corrupts(
    bound_model, history, features
):
    """Drift observations land while requests are in flight; every response
    is served by exactly one published version, bit-identically."""
    service = _service(max_batch=4, max_latency_ms=0.5)
    service.deploy("qnn", bound_model, calibration=history[0])
    versions_by_number = {}
    with service:
        futures = []
        for index in range(20):
            futures.append(service.predict_async("qnn", features[index % 12]))
            if index in (6, 13):
                # Settle what is already queued so the stream observably
                # spans versions, then swap with the rest still to come.
                for future in futures:
                    future.result(timeout=60.0)
                service.observe_calibration("qnn", history[1 + (index > 6)])
        results = [future.result(timeout=60.0) for future in futures]

    for version in service.registry.history("qnn"):
        versions_by_number[version.version] = version
    assert len(results) == 20
    served_versions = {r.version for r in results}
    assert served_versions <= set(versions_by_number)
    assert len(served_versions) >= 2  # the swap really landed mid-stream

    # Per (version, batch) replay: bit-identical to the deployment that
    # actually served the window.
    by_batch: dict[int, list[int]] = {}
    for index, result in enumerate(results):
        by_batch.setdefault(result.batch_id, []).append(index)
    for indices in by_batch.values():
        indices.sort(key=lambda i: results[i].sequence)
        version = versions_by_number[results[indices[0]].version]
        assert len({results[i].version for i in indices}) == 1
        direct = version.model.forward_noisy_batch(
            np.stack([features[i % 12] for i in indices]), [version.noise_model]
        )[0]
        served = np.stack([results[i].logits for i in indices])
        assert np.array_equal(served, direct)


def test_predict_fails_fast_when_not_started(bound_model, history, features):
    service = _service()
    service.deploy("qnn", bound_model, calibration=history[0])
    with pytest.raises(ServingError, match="not started"):
        service.predict("qnn", features[0])


def test_rollback_returns_previous_version(bound_model, history):
    service = _service()
    service.deploy("qnn", bound_model, calibration=history[0])
    service.observe_calibration("qnn", history[1])
    assert service.registry.get("qnn").version == 2
    restored = service.rollback("qnn")
    assert restored.version == 1
    assert service.registry.get("qnn").version == 1


def test_stats_shape_and_cache_visibility(bound_model, history, features):
    service = _service(max_batch=4)
    service.deploy("qnn", bound_model, calibration=history[0])
    with service:
        service.predict_many("qnn", features[:8])
    stats = service.stats()
    assert set(stats) == {
        "telemetry",
        "scheduler",
        "engine_cache",
        "compiler",
        "deployments",
    }
    model_stats = stats["telemetry"]["models"]["qnn"]
    assert model_stats["submitted"] == 8
    assert model_stats["completed"] == 8
    assert model_stats["latency_p50_ms"] is not None
    assert model_stats["latency_p99_ms"] >= model_stats["latency_p50_ms"]
    assert sum(model_stats["batch_size_histogram"].values()) == model_stats["batches"]
    assert stats["deployments"]["qnn"]["current_version"] == 1
    # The second half of the stream reuses the first flush's bound circuits.
    cache = stats["engine_cache"]
    assert cache["bound_hits"] + cache["bound_builds"] > 0


def test_exceptional_exit_cancels_queued_requests(bound_model, history, features):
    from concurrent.futures import CancelledError

    service = _service(max_batch=64, max_latency_ms=1e6)
    service.deploy("qnn", bound_model, calibration=history[0])
    futures = []
    with pytest.raises(KeyboardInterrupt):
        with service:
            # Never reaches max_batch and the deadline is huge, so these sit
            # queued until the interrupt unwinds the context manager.
            futures = [service.predict_async("qnn", s) for s in features[:3]]
            raise KeyboardInterrupt
    cancelled = 0
    for future in futures:
        try:
            future.result(timeout=5.0)
        except CancelledError:
            cancelled += 1
    assert cancelled == len(futures)


def test_load_generator_report(bound_model, history, features):
    service = _service(max_batch=4, max_latency_ms=1.0)
    service.deploy("qnn", bound_model, calibration=history[0])
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    with service:
        report = generator.run(
            12, drift_history=history[1:3], observe_every=5
        )
    assert report.requests == report.completed == 12
    assert report.throughput_rps > 0
    assert report.latency_p99_ms >= report.latency_p50_ms
    assert report.per_model == {"qnn": 12}
    assert len(report.swaps) == 2
    payload = report.as_dict()
    assert payload["requests"] == 12


def test_load_generator_validates_inputs(bound_model, history, features):
    service = _service()
    service.deploy("qnn", bound_model, calibration=history[0])
    with pytest.raises(ServingError):
        LoadGenerator(service, features[0], names=["qnn"])  # 1-D pool
    with pytest.raises(ServingError):
        LoadGenerator(service, features, names=[])
    generator = LoadGenerator(service, features, names=["qnn"])
    with pytest.raises(ServingError):
        generator.run(0)
