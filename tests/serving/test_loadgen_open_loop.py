"""Open-loop load generation: scheduled arrivals, no coordinated omission.

The open-loop generator must (a) complete every scheduled request, (b)
derive its arrival schedule deterministically from the seed, and (c)
measure latency from the *scheduled arrival* — so a stalled service pays
for every request scheduled during the stall, which closed-loop
measurement silently forgives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import BatchPolicy, InferenceService, LoadGenerator
from repro.transpiler.pipeline import PassManager


@pytest.fixture()
def service(bound_model, history):
    service = InferenceService(
        policy=BatchPolicy(max_batch=4, max_latency_ms=1.0),
        pass_manager=PassManager(),
    )
    service.deploy("qnn", bound_model, calibration=history[0])
    with service:
        yield service


def test_open_loop_completes_every_request(service, features):
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    report = generator.run_open_loop(16, arrival_rate=400.0)
    assert report.requests == report.completed == 16
    assert report.mode == "open"
    assert report.arrival_rate == 400.0
    assert report.offered_rps > 0
    assert report.submit_lag_p99_ms is not None
    assert report.latency_p99_ms >= report.latency_p50_ms
    payload = report.as_dict()
    assert payload["mode"] == "open"
    assert payload["offered_rps"] == report.offered_rps


def test_open_loop_schedule_is_deterministic(features):
    """Same seed, same Poisson arrival gaps (and fixed-rate is uniform)."""
    from repro.utils.rng import ensure_rng

    first = ensure_rng(9).exponential(1.0 / 100.0, size=8)
    second = ensure_rng(9).exponential(1.0 / 100.0, size=8)
    np.testing.assert_array_equal(first, second)


def test_open_loop_latency_includes_service_stalls(service, features):
    """A busy window cannot hide behind deferred submissions.

    With arrivals scheduled faster than the service drains them, open-loop
    latency (from scheduled arrival) must dominate the per-request service
    latency the results report — queueing delay is charged to requests.
    """
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    report = generator.run_open_loop(24, arrival_rate=5000.0, poisson=False)
    assert report.completed == 24
    # Offered far above capacity: measured p99 reflects the backlog the
    # schedule built up, so it is at least the drain time of most of the
    # stream, far above any single batch's service time.
    assert report.latency_p99_ms > report.latency_p50_ms >= 0.0
    assert report.offered_rps == pytest.approx(5000.0, rel=0.05)


def test_open_loop_drift_injection(service, features, history):
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    report = generator.run_open_loop(
        12, arrival_rate=300.0, drift_history=history[1:3], observe_every=5
    )
    assert report.completed == 12
    assert len(report.swaps) == 2


def test_open_loop_validates_inputs(service, features):
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    with pytest.raises(ServingError):
        generator.run_open_loop(0, arrival_rate=10.0)
    with pytest.raises(ServingError):
        generator.run_open_loop(4, arrival_rate=0.0)


def test_closed_loop_report_defaults_unchanged(service, features):
    """The closed-loop path keeps its shape: mode defaults, no open fields."""
    generator = LoadGenerator(service, features, names=["qnn"], seed=5)
    report = generator.run(8)
    assert report.mode == "closed"
    assert report.arrival_rate is None
    assert report.offered_rps is None
    assert report.submit_lag_p99_ms is None
