"""Property tests: consistent-hash routing stability and minimal remapping.

The sharded tier's correctness hinges on the ring being *stable*: a name's
shard may only change when the ring changes underneath it, and a ring
resize may only move the arcs the resize itself touched.  Hypothesis
drives randomized name sets and shard sets through the exact invariants:

* routing is deterministic and rebuild-independent (two routers built from
  the same shard ids agree on every name — the restart protocol relies on
  this across processes);
* after ``add_shard``, every name routes either to its old shard or to the
  new shard — never to a third party;
* after ``remove_shard``, only names that routed to the removed shard move
  at all;
* the moved fraction on a resize is close to the ideal 1/N, not a wholesale
  reshuffle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServingError
from repro.serving import ConsistentHashRouter, ring_point

names_strategy = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
        min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=64,
    unique=True,
)

shard_sets = st.sets(st.integers(min_value=0, max_value=31), min_size=2, max_size=8)

COMMON = dict(max_examples=50, deadline=None)


@settings(**COMMON)
@given(names=names_strategy, shards=shard_sets)
def test_routing_is_deterministic_and_rebuild_independent(names, shards):
    """Same ring in, same assignment out — across instances and call order."""
    first = ConsistentHashRouter(sorted(shards))
    second = ConsistentHashRouter(sorted(shards, reverse=True))
    for name in names:
        assert first.route(name) == first.route(name)
        assert first.route(name) == second.route(name)
        assert first.route(name) in shards


@settings(**COMMON)
@given(names=names_strategy, shards=shard_sets, new_shard=st.integers(32, 64))
def test_adding_a_shard_only_moves_names_to_the_new_shard(names, shards, new_shard):
    """Minimal-remap on grow: old shard or new shard, never a third party."""
    router = ConsistentHashRouter(sorted(shards))
    before = router.assignments(names)
    router.add_shard(new_shard)
    after = router.assignments(names)
    for name in names:
        assert after[name] == before[name] or after[name] == new_shard


@settings(**COMMON)
@given(names=names_strategy, shards=shard_sets)
def test_removing_a_shard_only_moves_its_own_names(names, shards):
    """Minimal-remap on shrink: survivors keep every name they had."""
    shard_ids = sorted(shards)
    victim = shard_ids[0]
    router = ConsistentHashRouter(shard_ids)
    before = router.assignments(names)
    router.remove_shard(victim)
    after = router.assignments(names)
    for name in names:
        if before[name] != victim:
            assert after[name] == before[name]
        else:
            assert after[name] != victim


def test_resize_moves_roughly_one_nth_of_names():
    """Growing 4 → 5 shards remaps ~1/5 of names, not a reshuffle."""
    names = [f"model-{index}" for index in range(2000)]
    router = ConsistentHashRouter(range(4))
    before = router.assignments(names)
    router.add_shard(4)
    after = router.assignments(names)
    moved = sum(1 for name in names if before[name] != after[name])
    fraction = moved / len(names)
    # Ideal is 1/5 = 0.20; virtual-node variance stays well inside these
    # bounds at 2000 names x 96 replicas.
    assert 0.10 < fraction < 0.32, f"moved {fraction:.2%} of names"


def test_balance_across_shards():
    """Every shard owns a non-trivial share of a large name population."""
    names = [f"endpoint-{index}" for index in range(4000)]
    router = ConsistentHashRouter(range(4))
    counts = {shard: 0 for shard in range(4)}
    for name in names:
        counts[router.route(name)] += 1
    for shard, count in counts.items():
        share = count / len(names)
        assert 0.10 < share < 0.45, f"shard {shard} owns {share:.2%}"


def test_ring_point_is_stable():
    """Ring positions are fixed values, not salted per process."""
    assert ring_point("name:qnn") == ring_point("name:qnn")
    assert ring_point("a") != ring_point("b")


def test_router_error_paths():
    """Degenerate rings and bad names fail fast with ServingError."""
    with pytest.raises(ServingError):
        ConsistentHashRouter([])
    with pytest.raises(ServingError):
        ConsistentHashRouter([0], replicas=0)
    router = ConsistentHashRouter([0, 1])
    with pytest.raises(ServingError):
        router.add_shard(0)
    with pytest.raises(ServingError):
        router.remove_shard(7)
    router.remove_shard(1)
    with pytest.raises(ServingError):
        router.remove_shard(0)  # never empty the ring
    with pytest.raises(ServingError):
        router.route("")
