"""Integration tests for the sharded serving tier.

These spawn real shard processes (spawn context, like production), so the
module keeps one 2-shard service alive across tests and orders the
state-mutating scenarios last:

* results are bit-identical to the single-process service, whatever the
  batch composition (PR 6 made the appliers batch-size independent);
* the asyncio surface (``predict_aio``) serves from a foreign event loop;
* killing a shard mid-stream loses nothing: every in-flight request
  completes, exactly once, bit-identical to the unsharded reference, and
  the supervisor records the restart;
* hot-swap through a shard matches the single-process swap decision and
  post-swap results stay bit-identical.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import (
    BatchPolicy,
    InferenceService,
    ShardedInferenceService,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

NAMES = ("alpha", "beta")


@pytest.fixture(scope="module")
def reference(bound_model, history):
    """Single-process service with the same deployments (expected results)."""
    service = InferenceService(
        policy=BatchPolicy(max_batch=4, max_latency_ms=5.0)
    )
    for name in NAMES:
        service.deploy(name, bound_model, calibration=history[0])
    with service:
        yield service


@pytest.fixture(scope="module")
def sharded(bound_model, history):
    """A live 2-shard service with two deployed endpoints."""
    service = ShardedInferenceService(
        num_shards=2, policy=BatchPolicy(max_batch=4, max_latency_ms=5.0)
    )
    for name in NAMES:
        report = service.deploy(name, bound_model, calibration=history[0])
        assert report["version"] == 1
    with service:
        yield service


def test_deploy_reports_shard_and_digest(sharded):
    """Deploy replies carry the owning shard and the compilation digest."""
    stats = sharded.stats()
    for name in NAMES:
        report = stats["deployments"][name]
        assert report["shard"] == sharded.route(name)
        assert report["compilation_digest"]
    assert stats["routing"] == {name: sharded.route(name) for name in NAMES}


def test_sharded_results_bit_identical_to_single_process(
    sharded, reference, features
):
    """Same logits as the unsharded service, request for request."""
    for name in NAMES:
        expected = reference.predict_many(name, list(features[:10]))
        observed = sharded.predict_many(name, list(features[:10]))
        for exp, obs in zip(expected, observed):
            np.testing.assert_array_equal(obs.logits, exp.logits)
            assert obs.prediction == exp.prediction
            assert obs.version == exp.version == 1


def test_predict_aio_serves_from_an_event_loop(sharded, reference, features):
    """The awaitable surface resolves to the same results."""

    async def drive():
        return await asyncio.gather(
            *(sharded.predict_aio("alpha", sample) for sample in features[:6])
        )

    observed = asyncio.run(drive())
    expected = reference.predict_many("alpha", list(features[:6]))
    for exp, obs in zip(expected, observed):
        np.testing.assert_array_equal(obs.logits, exp.logits)


def test_shard_kill_mid_stream_loses_nothing(sharded, reference, features):
    """Chaos: hard-kill the owning shard with requests in flight.

    Every submitted future must resolve exactly once with results
    bit-identical to the unsharded reference — the supervisor replays the
    dead shard's registry state and resubmits its in-flight windows.
    """
    name = "alpha"
    shard_id = sharded.route(name)
    samples = list(features[:16])
    expected = reference.predict_many(name, samples)

    futures = [sharded.predict_async(name, sample) for sample in samples]
    old_pid = sharded.kill_shard(shard_id)
    assert old_pid is not None
    # More traffic *after* the kill must also survive the restart window.
    futures += [sharded.predict_async(name, sample) for sample in samples[:4]]
    results = [future.result(timeout=120.0) for future in futures]

    assert len(results) == 20  # nothing lost
    assert all(future.done() for future in futures)  # nothing duplicated/stuck
    for exp, obs in zip(expected, results[:16]):
        np.testing.assert_array_equal(obs.logits, exp.logits)
    for exp, obs in zip(expected[:4], results[16:]):
        np.testing.assert_array_equal(obs.logits, exp.logits)

    deadline = time.monotonic() + 10.0
    while sharded.supervisor.restarts()[shard_id] < 1:
        assert time.monotonic() < deadline, "supervisor never recorded restart"
        time.sleep(0.05)
    stats = sharded.stats()
    assert stats["supervisor"]["shards_restarted"] >= 1
    assert stats["supervisor"]["restarts"][str(shard_id)] >= 1
    # The restarted shard replayed its deployments and serves version 1.
    assert stats["deployments"][name]["version"] == 1


def test_hot_swap_through_a_shard_matches_single_process(
    sharded, reference, history, features
):
    """Drift observation hot-swaps inside the shard; results track."""
    name = "beta"
    reference_report = reference.observe_calibration(name, history[3])
    sharded_report = sharded.observe_calibration(name, history[3])
    assert sharded_report.action == reference_report.action
    assert sharded_report.version == reference_report.version
    assert sharded_report.digest_changed == reference_report.digest_changed
    expected = reference.predict_many(name, list(features[:6]))
    observed = sharded.predict_many(name, list(features[:6]))
    for exp, obs in zip(expected, observed):
        np.testing.assert_array_equal(obs.logits, exp.logits)
        assert obs.version == exp.version


def test_stats_merge_and_reset(sharded):
    """Telemetry merges across shards and reset() zeroes every shard."""
    stats = sharded.stats()
    assert set(stats["telemetry"]["shards"]) == {"0", "1"}
    assert stats["telemetry"]["models"]  # traffic from earlier tests
    for rollup in stats["telemetry"]["shards"].values():
        assert "restarts" in rollup
        assert "qps" in rollup
    sharded.reset_telemetry()
    cleared = sharded.stats()
    assert cleared["telemetry"]["models"] == {}


def test_deploy_cache_pins_the_model_object(sharded, bound_model):
    """The payload cache must hold the model so its id cannot be recycled.

    Keyed by ``id(model)`` alone, CPython could hand a freed model's id to
    a different model and a later deploy would ship the wrong bytes; the
    cached tuple therefore retains the model object itself.
    """
    cached = sharded._model_bytes[id(bound_model)]
    assert cached[0] is bound_model


def test_mixed_length_group_fails_fast_instead_of_hanging(sharded):
    """Mixed feature lengths for one name fail the group, never hang it."""
    good = sharded.predict_async("alpha", np.ones(6))
    bad = sharded.predict_async("alpha", np.ones(5))
    with pytest.raises((ValueError, ServingError)):
        bad.result(timeout=30.0)
    # The coalesced partner must also resolve (either way), never hang.
    try:
        good.result(timeout=30.0)
    except (ValueError, ServingError):
        pass


def test_front_door_validation_errors(bound_model, history, features):
    """Bad requests fail fast, before any shard sees them."""
    with pytest.raises(ServingError):
        ShardedInferenceService(num_shards=0)
    service = ShardedInferenceService(num_shards=1)
    try:
        with pytest.raises(ServingError):
            service.predict("missing", features[0])
        service.deploy("qnn", bound_model, calibration=history[0])
        with pytest.raises(ServingError):
            # Deployed, but the front-door loop was never started.
            service.predict("qnn", features[0])
        service.start()
        with pytest.raises(ServingError):
            service.predict("qnn", features[:2])  # matrix, not a vector
    finally:
        service.stop()
    with pytest.raises(ServingError):
        service.predict("qnn", features[0])  # stopped service rejects work
    with pytest.raises(ServingError):
        service.start()  # a stopped service cannot restart
