"""Serving equivalence: micro-batched responses == direct forward_*_batch.

The scheduler's contract is that coalescing is *invisible* in the numbers:
each flushed window is served by exactly one ``forward_noisy_batch`` /
``forward_ideal_batch`` call on the stacked samples, so reconstructing the
windows from the response metadata and repeating those direct calls must
reproduce every served logit bit-for-bit — across batch split points, mixed
models in one window, and hot-swaps mid-stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import BatchPolicy, MicroBatchScheduler, ModelRegistry
from repro.simulator import NoiseModel


def _make_scheduler(registry, max_batch, max_latency_ms=1e6):
    """An un-threaded scheduler with deterministic flush control."""
    return MicroBatchScheduler(
        registry, policy=BatchPolicy(max_batch=max_batch, max_latency_ms=max_latency_ms)
    )


def _windows(results):
    """Group results by flushed batch, preserving intra-batch row order."""
    by_batch: dict[int, list] = {}
    for result in results:
        by_batch.setdefault(result.batch_id, []).append(result)
    for batch in by_batch.values():
        batch.sort(key=lambda r: r.sequence)
    return [by_batch[batch_id] for batch_id in sorted(by_batch)]


def test_served_rows_bit_identical_across_batch_split_points(
    bound_model, noise_model, features
):
    """10 requests under max_batch=4 → windows [4, 4, 2], each bit-identical."""
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=4)
    samples = features[:10]
    futures = [scheduler.submit("qnn", sample) for sample in samples]
    scheduler.flush_pending(force=True)
    results = [future.result(timeout=0) for future in futures]

    assert [r.batch_size for r in results] == [4] * 4 + [4] * 4 + [2] * 2
    # Reference: the same windows served by direct batched forwards.
    for window, (start, stop) in zip(_windows(results), ((0, 4), (4, 8), (8, 10))):
        direct = bound_model.forward_noisy_batch(
            samples[start:stop], [noise_model]
        )[0]
        served = np.stack([r.logits for r in window])
        assert np.array_equal(served, direct)
        for row, result in enumerate(window):
            assert result.prediction == int(np.argmax(direct[row]))


def test_mixed_models_in_one_window_serve_from_their_own_deployments(
    bound_model, noise_model, features
):
    """Interleaved requests for two models coalesce per-model, bit-identically."""
    registry = ModelRegistry()
    other = bound_model.copy(parameters=bound_model.parameters + 0.3, name="other")
    registry.publish("a", bound_model, noise_model=noise_model)
    registry.publish("b", other, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=8)

    futures = []
    for index in range(12):  # a, b, a, b, ...
        name = "a" if index % 2 == 0 else "b"
        futures.append((name, scheduler.submit(name, features[index])))
    scheduler.flush_pending(force=True)

    for name, model in (("a", bound_model), ("b", other)):
        rows = [features[i] for i in range(12) if (i % 2 == 0) == (name == "a")]
        direct = model.forward_noisy_batch(np.stack(rows), [noise_model])[0]
        served = np.stack(
            [f.result(timeout=0).logits for n, f in futures if n == name]
        )
        assert np.array_equal(served, direct)
    versions = {f.result(timeout=0).version for _, f in futures}
    assert versions == {1}


def test_hot_swap_mid_stream_loses_no_request_and_serves_each_version(
    bound_model, noise_model, features, history
):
    """A publish between flushes swaps the served model atomically."""
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=8)

    first = [scheduler.submit("qnn", sample) for sample in features[:5]]
    scheduler.flush_pending(force=True)

    # Hot-swap: new parameters and a new calibration day's noise model.
    swapped = bound_model.copy(parameters=bound_model.parameters - 0.2)
    new_noise = NoiseModel.from_calibration(history[1])
    registry.publish("qnn", swapped, noise_model=new_noise)

    second = [scheduler.submit("qnn", sample) for sample in features[5:9]]
    scheduler.flush_pending(force=True)

    results_v1 = [future.result(timeout=0) for future in first]
    results_v2 = [future.result(timeout=0) for future in second]
    assert {r.version for r in results_v1} == {1}
    assert {r.version for r in results_v2} == {2}

    direct_v1 = bound_model.forward_noisy_batch(features[:5], [noise_model])[0]
    direct_v2 = swapped.forward_noisy_batch(features[5:9], [new_noise])[0]
    assert np.array_equal(np.stack([r.logits for r in results_v1]), direct_v1)
    assert np.array_equal(np.stack([r.logits for r in results_v2]), direct_v2)


def test_ideal_deployment_serves_forward_ideal_batch(bound_model, features):
    """A model published without a noise model serves the ideal path."""
    registry = ModelRegistry()
    unbound = bound_model.copy()
    unbound.transpiled = None
    registry.publish("ideal", unbound)
    scheduler = _make_scheduler(registry, max_batch=6)
    futures = [scheduler.submit("ideal", sample) for sample in features[:6]]
    scheduler.flush_pending(force=True)
    direct = unbound.forward_ideal_batch(features[:6], [None])[0]
    served = np.stack([f.result(timeout=0).logits for f in futures])
    assert np.array_equal(served, direct)


def test_submit_validates_name_and_shape(bound_model, noise_model, features):
    from repro.exceptions import ServingError

    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=4)
    with pytest.raises(ServingError):
        scheduler.submit("nope", features[0])
    with pytest.raises(ServingError):
        scheduler.submit("qnn", features[:2])  # a matrix, not one sample


def test_stop_without_drain_cancels_pending(bound_model, noise_model, features):
    from concurrent.futures import CancelledError

    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=64)
    futures = [scheduler.submit("qnn", sample) for sample in features[:3]]
    scheduler.stop(drain=False)
    for future in futures:
        with pytest.raises(CancelledError):
            future.result(timeout=0)
    assert scheduler.stats.cancelled == 3
    from repro.exceptions import ServingError

    with pytest.raises(ServingError):
        scheduler.submit("qnn", features[0])  # closed


def test_stopped_scheduler_refuses_restart(bound_model, noise_model):
    from repro.exceptions import ServingError

    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=4)
    scheduler.start()
    assert scheduler.is_running
    scheduler.stop()
    assert not scheduler.is_running
    with pytest.raises(ServingError):
        scheduler.start()


def test_stop_with_drain_serves_everything(bound_model, noise_model, features):
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    scheduler = _make_scheduler(registry, max_batch=64)
    futures = [scheduler.submit("qnn", sample) for sample in features[:3]]
    scheduler.stop(drain=True)
    direct = bound_model.forward_noisy_batch(features[:3], [noise_model])[0]
    served = np.stack([f.result(timeout=0).logits for f in futures])
    assert np.array_equal(served, direct)
