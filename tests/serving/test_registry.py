"""ModelRegistry: atomic publish / rollback, version history, dedupe."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import ModelRegistry, deployment_key
from repro.simulator import NoiseModel


def test_publish_and_get_roundtrip(bound_model, noise_model):
    registry = ModelRegistry()
    version = registry.publish("qnn", bound_model, noise_model=noise_model)
    assert version.version == 1
    assert version.compilation_digest == bound_model.transpiled.compilation_digest()
    current = registry.get("qnn")
    assert current is version
    assert registry.names() == ["qnn"]
    assert "qnn" in registry


def test_unknown_name_raises(bound_model):
    registry = ModelRegistry()
    with pytest.raises(ServingError):
        registry.get("missing")
    with pytest.raises(ServingError):
        registry.history("missing")
    with pytest.raises(ServingError):
        registry.rollback("missing")


def test_publish_bumps_version_on_new_parameters(bound_model, noise_model):
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    swapped = bound_model.copy(parameters=bound_model.parameters + 0.1)
    version = registry.publish("qnn", swapped, noise_model=noise_model)
    assert version.version == 2
    assert registry.get("qnn").model is swapped
    assert len(registry.history("qnn")) == 2


def test_content_identical_publish_is_a_noop(bound_model, noise_model):
    registry = ModelRegistry()
    first = registry.publish("qnn", bound_model, noise_model=noise_model)
    again = registry.publish(
        "qnn", bound_model.copy(), noise_model=noise_model
    )  # fresh object, same content
    assert again is first
    assert len(registry.history("qnn")) == 1
    assert deployment_key(bound_model, noise_model) == first.model_key


def test_rollback_restores_previous_and_preserves_history(bound_model, noise_model):
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    v2 = registry.publish(
        "qnn",
        bound_model.copy(parameters=bound_model.parameters + 0.5),
        noise_model=noise_model,
    )
    assert registry.get("qnn") is v2
    restored = registry.rollback("qnn")
    assert restored.version == 1
    assert registry.get("qnn").version == 1
    # History is append-only; a later publish keeps numbering monotonic.
    assert [v.version for v in registry.history("qnn")] == [1, 2]
    v3 = registry.publish(
        "qnn",
        bound_model.copy(parameters=bound_model.parameters - 0.5),
        noise_model=noise_model,
    )
    assert v3.version == 3
    with pytest.raises(ServingError):
        registry.rollback("qnn")  # back at index 0 after two rollbacks
        registry.rollback("qnn")
        registry.rollback("qnn")


def test_rollback_at_first_version_raises(bound_model, noise_model):
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    with pytest.raises(ServingError):
        registry.rollback("qnn")


def test_noisy_publish_requires_device_binding(bound_model, noise_model):
    registry = ModelRegistry()
    unbound = bound_model.copy()
    unbound.transpiled = None
    with pytest.raises(ServingError):
        registry.publish("qnn", unbound, noise_model=noise_model)
    version = registry.publish("ideal", unbound)  # ideal serving is fine
    assert version.compilation_digest is None


def test_history_retention_is_bounded_with_monotonic_versions(
    bound_model, noise_model
):
    registry = ModelRegistry(max_history=3)
    for step in range(8):
        registry.publish(
            "qnn",
            bound_model.copy(parameters=bound_model.parameters + step),
            noise_model=noise_model,
        )
    history = registry.history("qnn")
    assert len(history) == 3
    assert [v.version for v in history] == [6, 7, 8]  # numbering never resets
    assert registry.get("qnn").version == 8
    # Rollback works within the retained window, then runs out.
    assert registry.rollback("qnn").version == 7
    assert registry.rollback("qnn").version == 6
    with pytest.raises(ServingError):
        registry.rollback("qnn")


def test_max_history_validation():
    with pytest.raises(ServingError):
        ModelRegistry(max_history=1)


def test_dedupe_requires_matching_calibration_date(bound_model, noise_model):
    """Identical content for a *new* day still republishes (date tracking)."""
    registry = ModelRegistry()
    first = registry.publish(
        "qnn", bound_model, noise_model=noise_model, calibration_date="2022-01-01"
    )
    second = registry.publish(
        "qnn",
        bound_model.copy(),
        noise_model=noise_model,
        calibration_date="2022-01-02",
    )
    assert second.version == 2
    assert second.calibration_date == "2022-01-02"
    same_day = registry.publish(
        "qnn",
        bound_model.copy(),
        noise_model=noise_model,
        calibration_date="2022-01-02",
    )
    assert same_day is second


def test_concurrent_publish_and_get_stay_consistent(bound_model, noise_model):
    """Readers always see a complete version while writers publish."""
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    errors = []

    def writer(offset):
        for step in range(20):
            swapped = bound_model.copy(
                parameters=bound_model.parameters + offset + step * 1e-3
            )
            registry.publish("qnn", swapped, noise_model=noise_model)

    def reader():
        for _ in range(200):
            version = registry.get("qnn")
            if version.model_key != deployment_key(
                version.model, version.noise_model
            ):
                errors.append("torn read")

    threads = [threading.Thread(target=writer, args=(i,)) for i in (1.0, 2.0)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    versions = [v.version for v in registry.history("qnn")]
    assert versions == sorted(versions)
