"""Telemetry unit tests: failure accounting, reset, cross-shard merging.

Pins the PR 7 fixes and additions:

* a batch recorded with ``failed=True`` still advances ``last_complete``,
  so a run that ends in failures cannot deflate elapsed time and inflate
  the reported QPS of its successful prefix;
* ``model_stats`` exposes ``failure_rate``;
* ``reset()`` zeroes a live instance for back-to-back load runs;
* :func:`merge_shard_snapshots` folds per-shard ``as_dict`` snapshots and
  supervisor rollups into one service-wide view.
"""

from __future__ import annotations

import time

from repro.serving import ServingTelemetry, merge_shard_snapshots


def _record_run(telemetry: ServingTelemetry, name: str, *, fail_last: bool) -> None:
    telemetry.record_submit(name)
    telemetry.record_batch(name, version=1, size=4, latencies=[0.01] * 4)
    time.sleep(0.02)
    if fail_last:
        telemetry.record_batch(name, version=1, size=4, latencies=[], failed=True)
    else:
        telemetry.record_batch(name, version=1, size=4, latencies=[0.01] * 4)


def test_failed_batches_advance_the_activity_clock():
    """A failure-terminated run must not report the QPS of its prefix."""
    clean = ServingTelemetry()
    _record_run(clean, "qnn", fail_last=False)
    failing = ServingTelemetry()
    _record_run(failing, "qnn", fail_last=True)
    clean_stats = clean.model_stats("qnn")
    failing_stats = failing.model_stats("qnn")
    # Elapsed spans both batches in both runs, so the failing run (half the
    # completions over the same wall clock) must report *lower* QPS, not
    # the inflated rate of a clock frozen at the last success.
    assert failing_stats["qps"] < clean_stats["qps"]
    assert failing_stats["failed"] == 4
    assert failing_stats["completed"] == 4


def test_failure_rate_in_model_stats():
    """failure_rate = failed / (completed + failed); 0.0 when idle."""
    telemetry = ServingTelemetry()
    telemetry.record_batch("qnn", version=1, size=6, latencies=[0.01] * 6)
    telemetry.record_batch("qnn", version=1, size=2, latencies=[], failed=True)
    stats = telemetry.model_stats("qnn")
    assert stats["failure_rate"] == 2 / 8
    telemetry.record_submit("idle")
    assert telemetry.model_stats("idle")["failure_rate"] == 0.0


def test_reset_zeroes_every_counter():
    """After reset() the snapshot is empty, and new traffic counts fresh."""
    telemetry = ServingTelemetry()
    telemetry.record_submit("qnn")
    telemetry.record_batch("qnn", version=1, size=4, latencies=[0.01] * 4)
    telemetry.record_swap("qnn", "recompile")
    telemetry.reset()
    assert telemetry.as_dict() == {"models": {}, "swaps": {}}
    telemetry.record_batch("qnn", version=2, size=2, latencies=[0.01] * 2)
    assert telemetry.model_stats("qnn")["completed"] == 2


def test_merge_shard_snapshots_disjoint_names():
    """Names pinned to different shards merge without cross-talk."""
    shard0, shard1 = ServingTelemetry(), ServingTelemetry()
    shard0.record_submit("qnn-a")
    shard0.record_batch("qnn-a", version=1, size=4, latencies=[0.010] * 4)
    shard0.record_swap("qnn-a", "recompile")
    shard1.record_submit("qnn-b")
    shard1.record_batch("qnn-b", version=3, size=2, latencies=[0.020] * 2)
    merged = merge_shard_snapshots(
        {0: shard0.as_dict(), 1: shard1.as_dict()},
        shard_rollups={0: {"restarts": 1, "in_flight": 0}, 1: {"restarts": 0}},
    )
    assert sorted(merged["models"]) == ["qnn-a", "qnn-b"]
    assert merged["models"]["qnn-a"]["completed"] == 4
    assert merged["models"]["qnn-b"]["versions_served"] == [3]
    assert merged["swaps"] == {"qnn-a:recompile": 1}
    assert merged["shards"]["0"]["restarts"] == 1
    assert merged["shards"]["0"]["models"] == ["qnn-a"]
    assert merged["shards"]["0"]["batch_size_histogram"] == {"4": 1}
    assert merged["shards"]["1"]["qps"] > 0


def test_merge_shard_snapshots_same_name_on_two_shards():
    """Post-resize overlap: additive counters sum, percentiles take worst."""
    shard0, shard1 = ServingTelemetry(), ServingTelemetry()
    shard0.record_batch("qnn", version=1, size=4, latencies=[0.010] * 4)
    shard1.record_batch("qnn", version=2, size=2, latencies=[0.030] * 2)
    shard1.record_batch("qnn", version=2, size=2, latencies=[], failed=True)
    merged = merge_shard_snapshots({0: shard0.as_dict(), 1: shard1.as_dict()})
    stats = merged["models"]["qnn"]
    assert stats["completed"] == 6
    assert stats["failed"] == 2
    assert stats["batches"] == 3
    assert stats["failure_rate"] == 2 / 8
    assert stats["versions_served"] == [1, 2]
    assert stats["batch_size_histogram"] == {"2": 2, "4": 1}
    # Worst-shard bound for unmergeable percentile summaries.
    assert stats["latency_p99_ms"] >= 29.0


def test_merge_handles_empty_snapshots():
    """Fresh shards contribute empty rollups, not errors."""
    merged = merge_shard_snapshots({0: {}, 1: {"models": {}, "swaps": {}}})
    assert merged["models"] == {}
    assert merged["swaps"] == {}
    assert set(merged["shards"]) == {"0", "1"}
    assert merged["shards"]["0"]["completed"] == 0
