"""Shared fixtures for the serving tests: small bound models + drift history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_device_history
from repro.qnn import QNNModel
from repro.simulator import NoiseModel
from repro.transpiler import get_device_coupling


@pytest.fixture(scope="session")
def history():
    """A short drift history on a 5-qubit library device."""
    return generate_device_history("ring_5", 10, seed=11)


@pytest.fixture(scope="session")
def bound_model(history):
    """A small (3-qubit) model bound to the ring_5 device on day 0."""
    model = QNNModel.create(
        num_qubits=3, num_features=6, num_classes=2, repeats=1, seed=3
    )
    model.bind_to_device(get_device_coupling("ring_5"), calibration=history[0])
    return model


@pytest.fixture(scope="session")
def noise_model(history):
    """The noise model of day 0 of the drift history."""
    return NoiseModel.from_calibration(history[0])


@pytest.fixture()
def features():
    """A deterministic pool of feature vectors (row i is distinguishable)."""
    rng = np.random.default_rng(17)
    return rng.uniform(0.0, 1.0, size=(24, 6))
