"""Supervisor-level recovery: a poison state op must not crash-loop a shard.

State ops (deploy/observe/rollback) are replayed from the state log on every
restart; without an attempt cap, a deploy payload that kills the shard on
apply would respawn-and-crash forever.  The supervisor quarantines such an
entry after :data:`~repro.serving.shards.MAX_MESSAGE_ATTEMPTS` crashes,
fails the caller's future loudly, and keeps serving everything else.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.exceptions import ServingError
from repro.serving.shards import (
    MAX_MESSAGE_ATTEMPTS,
    ShardSupervisor,
    model_payload_digest,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


class _ExitOnUnpickle:
    """Pickles fine; unpickling kills the host process (poison payload)."""

    def __reduce__(self):
        return (os._exit, (13,))


def test_poison_deploy_is_quarantined_not_crash_looped():
    poison = pickle.dumps(_ExitOnUnpickle(), protocol=pickle.HIGHEST_PROTOCOL)
    supervisor = ShardSupervisor(1, poll_seconds=0.05)
    try:
        supervisor.start()
        assert supervisor.submit(0, {"op": "ping"}).result(timeout=120.0) == 0
        future = supervisor.submit(
            0,
            {
                "op": "deploy",
                "name": "poison",
                "model_digest": model_payload_digest(poison),
                "model_bytes": poison,
            },
        )
        with pytest.raises(ServingError, match="quarantined"):
            future.result(timeout=120.0)
        assert supervisor.stats.state_ops_quarantined == 1
        assert supervisor.stats.shards_restarted == MAX_MESSAGE_ATTEMPTS
        # The shard came back without the poison op and serves again.
        assert supervisor.submit(0, {"op": "ping"}).result(timeout=120.0) == 0
        # Later restarts skip the quarantined entry outright.
        supervisor.kill(0)
        assert supervisor.submit(0, {"op": "ping"}).result(timeout=120.0) == 0
        assert supervisor.stats.state_ops_quarantined == 1
    finally:
        supervisor.close(drain=False)
