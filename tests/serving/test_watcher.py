"""CalibrationWatcher: drift classification, boundary reuse, hot-swap publish."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.calibration.snapshot import CalibrationSnapshot
from repro.serving import CalibrationWatcher, ModelRegistry, ServingTelemetry
from repro.simulator import NoiseModel
from repro.transpiler.pipeline import PassManager


@pytest.fixture()
def registry(bound_model, noise_model):
    registry = ModelRegistry()
    registry.publish("qnn", bound_model, noise_model=noise_model)
    return registry


def _warm_watcher(registry, history, **kwargs):
    """A watcher whose pass manager has seen the deployed compilation."""
    manager = PassManager()
    watcher = CalibrationWatcher(registry, "qnn", pass_manager=manager, **kwargs)
    # Prime the pipeline with the deployment's own compilation so the first
    # observe has a layout decision to reuse against.
    model = registry.get("qnn").model
    from repro.transpiler import Target

    manager.compile(
        model.ansatz,
        Target(coupling=model.transpiled.coupling, calibration=history[0]),
    )
    return watcher


def _crossing_snapshot(snapshot: CalibrationSnapshot) -> CalibrationSnapshot:
    """A drifted day that provably flips the noise-aware layout winner.

    Every error table is inverted around its own range — the best coupler
    becomes the worst — so the decision-time winner cannot stay optimal.
    """

    def invert(table):
        if not table:
            return table
        low, high = min(table.values()), max(table.values())
        return {key: high + low - value for key, value in table.items()}

    return dataclasses.replace(
        snapshot,
        single_qubit_error=invert(snapshot.single_qubit_error),
        two_qubit_error=invert(snapshot.two_qubit_error),
        readout_error=invert(snapshot.readout_error),
        date="2099-01-01",
    )


def _scaled_snapshot(snapshot: CalibrationSnapshot, factor: float) -> CalibrationSnapshot:
    """The same day with every error rate scaled by ``factor``."""
    return dataclasses.replace(
        snapshot,
        single_qubit_error={
            k: v * factor for k, v in snapshot.single_qubit_error.items()
        },
        two_qubit_error={
            k: v * factor for k, v in snapshot.two_qubit_error.items()
        },
        readout_error={k: v * factor for k, v in snapshot.readout_error.items()},
        date="2022-01-02",
    )


def test_small_drift_refreshes_within_boundary(registry, history):
    watcher = _warm_watcher(registry, history)
    drifted = _scaled_snapshot(history[0], 1.001)  # inside the proof margin
    report = watcher.observe(drifted)
    assert report.action == "refresh"
    assert not report.digest_changed
    assert not report.parameters_changed
    assert report.boundary_reused
    # The publish is real: the served noise model now tracks the new day.
    current = registry.get("qnn")
    assert current.version == report.version == 2
    expected = NoiseModel.from_calibration(drifted)
    assert (
        current.noise_model.single_qubit_error
        == expected.single_qubit_error
    )


def test_boundary_crossing_drift_recompiles(registry, history):
    watcher = _warm_watcher(registry, history)
    before = registry.get("qnn")
    crossing = _crossing_snapshot(history[0])
    report = watcher.observe(crossing)
    assert not report.boundary_reused
    assert report.digest_changed
    assert report.action == "recompile"
    after = registry.get("qnn")
    assert after.compilation_digest != before.compilation_digest
    assert after.version == 2


def test_adapter_readapts_parameters(registry, history):
    new_parameters = registry.get("qnn").model.parameters + 1.0
    calls = []

    def adapter(snapshot):
        calls.append(snapshot)
        return new_parameters

    watcher = _warm_watcher(registry, history, adapter=adapter)
    report = watcher.observe(history[2])
    assert calls == [history[2]]
    assert report.action == "readapt"
    assert report.parameters_changed
    assert np.array_equal(registry.get("qnn").model.parameters, new_parameters)


def test_adapter_keeping_parameters_is_a_refresh(registry, history):
    watcher = _warm_watcher(registry, history, adapter=lambda snapshot: None)
    report = watcher.observe(history[1])
    assert report.action == "refresh"
    assert not report.parameters_changed


def test_run_consumes_a_history_in_order(registry, history):
    telemetry = ServingTelemetry()
    watcher = _warm_watcher(registry, history, telemetry=telemetry)
    reports = watcher.run(history[1:5])
    assert [r.date for r in reports] == [s.date for s in history[1:5]]
    assert [r.version for r in reports] == [2, 3, 4, 5]
    swaps = telemetry.as_dict()["swaps"]
    assert sum(swaps.values()) == 4


def test_unbound_deployment_rejects_watching(bound_model):
    registry = ModelRegistry()
    unbound = bound_model.copy()
    unbound.transpiled = None
    registry.publish("qnn", unbound)
    watcher = CalibrationWatcher(registry, "qnn", pass_manager=PassManager())
    from repro.exceptions import ServingError

    with pytest.raises(ServingError):
        watcher.observe(object())
