"""Tests for the QNN model, encoder, noise injection, trainer, and evaluation."""

import numpy as np
import pytest

from repro.datasets import load_mnist4
from repro.exceptions import DatasetError, TrainingError
from repro.qnn import (
    AngleEncoder,
    NoiseInjector,
    QNNModel,
    TrainConfig,
    Trainer,
    evaluate_ideal,
    evaluate_noisy,
)
from repro.simulator import NoiseModel, StatevectorSimulator


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------
def test_encoder_layer_count_and_ops():
    encoder = AngleEncoder(num_qubits=4, num_features=16)
    assert encoder.num_layers == 4
    ops = encoder.operations()
    assert len(ops) == 16
    assert ops[0].gate == "ry" and ops[4].gate == "rx" and ops[8].gate == "rz"


def test_encoder_partial_last_layer():
    encoder = AngleEncoder(num_qubits=4, num_features=6)
    assert encoder.num_layers == 2
    assert len(encoder.operations()) == 6


def test_encoder_rejects_wrong_feature_length():
    encoder = AngleEncoder(num_qubits=4, num_features=16)
    with pytest.raises(DatasetError):
        encoder.angles(np.zeros((2, 8)))


def test_encoder_statevectors_are_normalized():
    encoder = AngleEncoder(num_qubits=3, num_features=6)
    simulator = StatevectorSimulator(3)
    states = encoder.encode_statevectors(np.random.default_rng(0).uniform(size=(4, 6)), simulator)
    assert np.allclose(np.linalg.norm(states, axis=1), 1.0)


def test_encoder_with_qubit_mapping():
    encoder = AngleEncoder(num_qubits=2, num_features=2)
    simulator = StatevectorSimulator(3)
    states = encoder.encode_statevectors(
        np.array([[1.0, 0.0]]), simulator, qubit_mapping=[2, 0]
    )
    # Feature 0 (value 1 -> angle pi) lands on physical qubit 2.
    probabilities = np.abs(states[0]) ** 2
    assert probabilities[1] == pytest.approx(1.0)  # |001>


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------
def test_model_create_validates_class_count():
    with pytest.raises(TrainingError):
        QNNModel.create(2, 4, 3)


def test_model_forward_shapes():
    model = QNNModel.create(4, 16, 4, repeats=1, seed=0)
    features = np.random.default_rng(0).uniform(size=(6, 16))
    logits = model.forward_ideal(features)
    assert logits.shape == (6, 4)
    assert np.all(np.abs(logits) <= model.logit_scale + 1e-9)


def test_model_copy_with_parameters_shares_device_binding(model):
    new_parameters = np.zeros(model.num_parameters)
    clone = model.copy_with_parameters(new_parameters)
    assert clone.transpiled is model.transpiled
    assert np.allclose(clone.parameters, 0.0)
    assert not np.allclose(model.parameters, 0.0)


def test_model_noisy_forward_requires_binding():
    unbound = QNNModel.create(4, 16, 4, repeats=1, seed=0)
    with pytest.raises(TrainingError):
        unbound.forward_noisy(np.zeros((1, 16)), NoiseModel.ideal(5))


def test_model_noisy_forward_matches_ideal_without_noise(model):
    features = np.random.default_rng(1).uniform(size=(4, 16))
    ideal = model.forward_ideal(features)
    noisy = model.forward_noisy(features, NoiseModel.ideal(5))
    assert np.allclose(ideal, noisy, atol=1e-6)


def test_model_noisy_forward_with_noise_shrinks_logits(model, calibration):
    features = np.random.default_rng(1).uniform(size=(4, 16))
    ideal = np.abs(model.forward_ideal(features)).mean()
    noisy = np.abs(model.forward_noisy(features, NoiseModel.from_calibration(calibration))).mean()
    assert noisy < ideal


def test_model_to_dict_round_trips_parameters(model):
    payload = model.to_dict()
    assert payload["num_qubits"] == 4
    assert len(payload["parameters"]) == model.num_parameters


def test_model_parameter_shape_validation():
    model = QNNModel.create(4, 16, 4, repeats=1, seed=0)
    with pytest.raises(TrainingError):
        QNNModel(
            ansatz=model.ansatz,
            encoder=model.encoder,
            readout_qubits=[0, 1],
            parameters=np.zeros(3),
        )


# ---------------------------------------------------------------------------
# Noise injection
# ---------------------------------------------------------------------------
def test_noise_injector_validation():
    with pytest.raises(TrainingError):
        NoiseInjector(attenuation=np.array([1.2]))
    with pytest.raises(TrainingError):
        NoiseInjector(attenuation=np.array([0.5]), sigma=-0.1)


def test_noise_injector_apply_shapes_and_derivative():
    injector = NoiseInjector(attenuation=np.array([0.5, 0.8]), sigma=0.0)
    values = np.array([[1.0, -1.0]])
    noisy, derivative = injector.apply(values)
    assert np.allclose(noisy, [[0.5, -0.8]])
    assert np.allclose(derivative, [0.5, 0.8])


def test_noise_injector_from_calibration(model, calibration):
    injector = NoiseInjector.from_calibration(
        model.transpiled, calibration, model.readout_qubits
    )
    assert injector.attenuation.shape == (4,)
    assert np.all(injector.attenuation > 0)
    assert np.all(injector.attenuation < 1)


def test_ideal_injector_is_identity():
    injector = NoiseInjector.ideal(3)
    values = np.random.default_rng(0).uniform(-1, 1, size=(2, 3))
    noisy, derivative = injector.apply(values)
    assert np.allclose(noisy, values)
    assert np.allclose(derivative, 1.0)


# ---------------------------------------------------------------------------
# Trainer and evaluation
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_task():
    dataset = load_mnist4(num_samples=80, seed=9)
    return dataset


def test_training_reduces_loss_and_improves_accuracy(tiny_task):
    model = QNNModel.create(4, 16, 4, repeats=1, seed=1)
    trainer = Trainer(model, TrainConfig(epochs=6, batch_size=16, learning_rate=0.1, seed=0))
    before = evaluate_ideal(model, tiny_task.train_features, tiny_task.train_labels).accuracy
    result = trainer.train(tiny_task.train_features, tiny_task.train_labels)
    assert result.loss_history[-1] < result.loss_history[0]
    assert result.final_accuracy >= before
    assert np.allclose(model.parameters, result.parameters)


def test_training_with_frozen_mask_keeps_parameters_fixed(tiny_task):
    model = QNNModel.create(4, 16, 4, repeats=1, seed=1)
    frozen = np.zeros(model.num_parameters, dtype=bool)
    frozen[:10] = True
    target = model.parameters.copy()
    trainer = Trainer(model, TrainConfig(epochs=2, batch_size=16, seed=0))
    result = trainer.train(
        tiny_task.train_features,
        tiny_task.train_labels,
        frozen_mask=frozen,
        prox_target=target,
    )
    assert np.allclose(result.parameters[:10], target[:10])
    assert not np.allclose(result.parameters[10:], target[10:])


def test_training_with_prox_pulls_toward_target(tiny_task):
    model = QNNModel.create(4, 16, 4, repeats=1, seed=1)
    target = np.zeros(model.num_parameters)
    config = TrainConfig(epochs=3, batch_size=16, seed=0)
    free = Trainer(model, config).train(
        tiny_task.train_features, tiny_task.train_labels, update_model=False
    )
    constrained = Trainer(model, config).train(
        tiny_task.train_features,
        tiny_task.train_labels,
        prox_rho=5.0,
        prox_target=target,
        update_model=False,
    )
    assert np.linalg.norm(constrained.parameters) < np.linalg.norm(free.parameters)


def test_trainer_validation_errors(tiny_task):
    model = QNNModel.create(4, 16, 4, repeats=1, seed=1)
    trainer = Trainer(model, TrainConfig(epochs=1))
    with pytest.raises(TrainingError):
        trainer.train(tiny_task.train_features, tiny_task.train_labels[:-3])
    with pytest.raises(TrainingError):
        trainer.train(tiny_task.train_features, tiny_task.train_labels, prox_rho=1.0)
    with pytest.raises(TrainingError):
        TrainConfig(epochs=0)


def test_evaluate_noisy_with_shots_is_reproducible(model, calibration, tiny_task):
    noise = NoiseModel.from_calibration(calibration)
    first = evaluate_noisy(
        model, tiny_task.test_features[:8], tiny_task.test_labels[:8], noise, shots=256, seed=3
    )
    second = evaluate_noisy(
        model, tiny_task.test_features[:8], tiny_task.test_labels[:8], noise, shots=256, seed=3
    )
    assert first.accuracy == second.accuracy
    assert first.logits.shape == (8, 4)
    assert first.predictions.shape == (8,)
