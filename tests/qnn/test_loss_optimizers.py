"""Tests for loss functions and optimizers."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.qnn import Adam, SGD, accuracy, cross_entropy_loss, get_loss, get_optimizer, mse_loss, one_hot, softmax


def test_softmax_rows_sum_to_one():
    logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
    probabilities = softmax(logits)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert probabilities[0].argmax() == 2


def test_softmax_is_shift_invariant():
    logits = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(softmax(logits), softmax(logits + 100.0))


def test_one_hot_encoding():
    encoded = one_hot(np.array([0, 2]), 3)
    assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])


def test_one_hot_validation():
    with pytest.raises(TrainingError):
        one_hot(np.array([3]), 3)
    with pytest.raises(TrainingError):
        one_hot(np.array([[0, 1]]), 2)


def test_cross_entropy_perfect_prediction_has_low_loss():
    confident = np.array([[10.0, -10.0], [-10.0, 10.0]])
    loss, gradient = cross_entropy_loss(confident, np.array([0, 1]))
    assert loss < 1e-3
    assert np.allclose(gradient, 0.0, atol=1e-3)


def test_cross_entropy_gradient_matches_finite_difference():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(4, 3))
    labels = np.array([0, 1, 2, 1])
    _, gradient = cross_entropy_loss(logits, labels)
    epsilon = 1e-6
    for i in range(logits.shape[0]):
        for j in range(logits.shape[1]):
            plus = logits.copy(); plus[i, j] += epsilon
            minus = logits.copy(); minus[i, j] -= epsilon
            numerical = (cross_entropy_loss(plus, labels)[0] - cross_entropy_loss(minus, labels)[0]) / (2 * epsilon)
            assert gradient[i, j] == pytest.approx(numerical, abs=1e-5)


def test_mse_loss_and_gradient_shapes():
    logits = np.zeros((3, 2))
    loss, gradient = mse_loss(logits, np.array([0, 1, 0]))
    assert loss > 0
    assert gradient.shape == logits.shape


def test_accuracy_measure():
    logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


def test_get_loss_lookup():
    assert get_loss("cross_entropy") is cross_entropy_loss
    with pytest.raises(TrainingError):
        get_loss("hinge")


@pytest.mark.parametrize("optimizer_name", ["sgd", "adam"])
def test_optimizers_minimize_quadratic(optimizer_name):
    optimizer = get_optimizer(optimizer_name, learning_rate=0.1)
    parameters = np.array([5.0, -3.0])
    for _ in range(300):
        gradient = 2 * parameters
        parameters = optimizer.step(parameters, gradient)
    assert np.allclose(parameters, 0.0, atol=1e-2)


def test_sgd_momentum_accumulates_velocity():
    optimizer = SGD(learning_rate=0.1, momentum=0.9)
    parameters = np.array([1.0])
    first = optimizer.step(parameters, np.array([1.0]))
    second = optimizer.step(first, np.array([1.0]))
    assert (parameters - first) < (first - second)  # step grows with momentum


def test_adam_reset_clears_state():
    optimizer = Adam(learning_rate=0.1)
    optimizer.step(np.zeros(2), np.ones(2))
    optimizer.reset()
    assert optimizer._m is None


def test_optimizer_validation():
    with pytest.raises(TrainingError):
        SGD(learning_rate=-1.0)
    with pytest.raises(TrainingError):
        SGD(learning_rate=0.1, momentum=1.5)
    with pytest.raises(TrainingError):
        Adam(learning_rate=0.0)
    with pytest.raises(TrainingError):
        get_optimizer("lbfgs")
