"""Batch/loop equivalence of the qnn-layer batch APIs and ``QNNModel.copy``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import (
    QNNModel,
    accuracy_over_days,
    evaluate_noisy,
    evaluate_noisy_batch,
)
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="module")
def harness():
    rng = np.random.default_rng(3)
    history = generate_belem_history(5, seed=21)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=13)
    model.bind_to_device(belem_coupling(), calibration=history[0])
    dataset = load_mnist4(num_samples=60, seed=5)
    features, labels = dataset.test_features[:8], dataset.test_labels[:8]
    noise_models = [NoiseModel.from_calibration(s) for s in history]
    parameter_sets = [
        rng.uniform(-np.pi, np.pi, model.num_parameters) for _ in range(5)
    ]
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(5)]
    return model, features, labels, noise_models, parameter_sets, seeds


def test_forward_ideal_batch_bitmatches_loop(harness):
    model, features, _, _, parameter_sets, _ = harness
    stacked = model.forward_ideal_batch(features, parameter_sets)
    for parameters, logits in zip(parameter_sets, stacked):
        assert np.array_equal(logits, model.forward_ideal(features, parameters=parameters))


def test_forward_noisy_batch_bitmatches_loop(harness):
    model, features, _, noise_models, parameter_sets, seeds = harness
    stacked = model.forward_noisy_batch(
        features, noise_models, parameter_sets=parameter_sets, shots=256, seeds=seeds
    )
    for noise_model, parameters, seed, logits in zip(
        noise_models, parameter_sets, seeds, stacked
    ):
        reference = model.forward_noisy(
            features, noise_model, parameters=parameters, shots=256, seed=seed
        )
        assert np.array_equal(logits, reference)


def test_evaluate_noisy_batch_bitmatches_loop(harness):
    model, features, labels, noise_models, parameter_sets, seeds = harness
    batched = evaluate_noisy_batch(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=512, seeds=seeds,
    )
    for noise_model, parameters, seed, result in zip(
        noise_models, parameter_sets, seeds, batched
    ):
        reference = evaluate_noisy(
            model, features, labels, noise_model,
            parameters=parameters, shots=512, seed=seed,
        )
        assert result.accuracy == reference.accuracy
        assert np.array_equal(result.logits, reference.logits)
        assert np.array_equal(result.predictions, reference.predictions)


def test_evaluate_noisy_batch_chunking_preserves_results(harness):
    model, features, labels, noise_models, parameter_sets, seeds = harness
    wide = evaluate_noisy_batch(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=512, seeds=seeds,
    )
    # Force ~1 binding per chunk; results must not move.
    narrow = evaluate_noisy_batch(
        model, features, labels, noise_models,
        parameter_sets=parameter_sets, shots=512, seeds=seeds,
        max_batch_bytes=1,
    )
    for a, b in zip(wide, narrow):
        assert np.array_equal(a.logits, b.logits)


def test_accuracy_over_days_matches_per_day_loop(harness):
    model, features, labels, noise_models, _, _ = harness
    batched = accuracy_over_days(model, features, labels, noise_models)
    loop = np.array(
        [evaluate_noisy(model, features, labels, m).accuracy for m in noise_models]
    )
    assert np.array_equal(batched, loop)


def test_loss_and_gradient_batch_bitmatches_loop(harness):
    model, features, labels, _, parameter_sets, _ = harness
    batched = model.loss_and_gradient_batch(features, labels, parameter_sets[:3])
    for parameters, (loss_value, gradient) in zip(parameter_sets, batched):
        ref_loss, ref_gradient = model.loss_and_gradient(
            features, labels, parameters=parameters
        )
        assert loss_value == ref_loss
        assert np.array_equal(gradient, ref_gradient)


def test_copy_is_independent_but_shares_binding(harness):
    model, *_ = harness
    clone = model.copy()
    assert clone.parameters is not model.parameters
    assert np.array_equal(clone.parameters, model.parameters)
    assert clone.transpiled is model.transpiled
    clone.parameters[:] = 0.0
    assert not np.array_equal(clone.parameters, model.parameters)


def test_copy_can_deep_copy_binding(harness):
    model, *_ = harness
    clone = model.copy(share_device_binding=False)
    assert clone.transpiled is not model.transpiled
    assert clone.transpiled.final_mapping == model.transpiled.final_mapping


def test_copy_with_parameters_delegates(harness):
    model, *_ = harness
    fresh = np.zeros(model.num_parameters)
    clone = model.copy_with_parameters(fresh, name="frozen")
    assert clone.name == "frozen"
    assert np.array_equal(clone.parameters, fresh)
    assert clone.transpiled is model.transpiled
