"""The fully batched training step and the observable-diagonal cache.

PR 8 reworked ``Trainer.train`` so every optimiser step is one
``loss_and_gradient_batch`` call over the pre-encoded minibatch instead
of an encode + per-sample forward/backward.  The rework is only allowed
because it is *bit-identical* at float64 to the seed's loop — pinned here
against a literal reimplementation of that loop.  The second group pins
the ``z_diagonal`` memoisation by counting cache builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_mnist4
from repro.qnn import (
    NoiseInjector,
    QNNModel,
    TrainConfig,
    Trainer,
    clear_z_diagonal_cache,
    z_diagonal,
    z_diagonal_cache_info,
)
from repro.qnn.loss import accuracy
from repro.qnn.optimizers import get_optimizer
from repro.simulator import SimulationEngine, StatevectorBackend
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def dataset():
    data = load_mnist4(num_samples=80, seed=11)
    return data.train_features[:24], data.train_labels[:24]


def _reference_training_loop(model, config, features, labels):
    """The seed's per-step loop: encode + loss_and_gradient per minibatch."""
    parameters = np.array(model.parameters, dtype=float)
    rng = ensure_rng(config.seed)
    optimizer = get_optimizer(config.optimizer, config.learning_rate)
    num_samples = features.shape[0]
    backend = StatevectorBackend(engine=SimulationEngine())
    loss_history, accuracy_history = [], []
    for _ in range(config.epochs):
        order = rng.permutation(num_samples) if config.shuffle else np.arange(num_samples)
        epoch_losses = []
        for start in range(0, num_samples, config.batch_size):
            batch_index = order[start : start + config.batch_size]
            loss_value, gradient = model.loss_and_gradient(
                features[batch_index],
                labels[batch_index],
                parameters=parameters,
                loss=config.loss,
                backend=backend,
            )
            parameters = optimizer.step(parameters, gradient)
            epoch_losses.append(loss_value)
        logits = model.forward_ideal(features, parameters=parameters, backend=backend)
        loss_history.append(float(np.mean(epoch_losses)))
        accuracy_history.append(accuracy(logits, labels))
    return parameters, loss_history, accuracy_history


class TestBatchedStepBitIdentity:
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_train_bitmatches_reference_loop(self, dataset, shuffle):
        features, labels = dataset
        config = TrainConfig(
            epochs=2, batch_size=8, learning_rate=0.05, seed=7, shuffle=shuffle
        )
        model = QNNModel.create(4, 16, 4, repeats=1, seed=3)
        expected_parameters, expected_losses, expected_accuracy = (
            _reference_training_loop(model, config, features, labels)
        )
        trainer = Trainer(
            model, config, backend=StatevectorBackend(engine=SimulationEngine())
        )
        result = trainer.train(features, labels, update_model=False)
        assert np.array_equal(result.parameters, expected_parameters)
        assert result.loss_history == expected_losses
        assert result.accuracy_history == expected_accuracy

    def test_uneven_final_minibatch(self, dataset):
        """A trailing partial batch slices the pre-encoded set correctly."""
        features, labels = dataset
        config = TrainConfig(epochs=1, batch_size=7, seed=5)
        model = QNNModel.create(4, 16, 4, repeats=1, seed=4)
        expected_parameters, expected_losses, _ = _reference_training_loop(
            model, config, features, labels
        )
        result = Trainer(
            model, config, backend=StatevectorBackend(engine=SimulationEngine())
        ).train(features, labels, update_model=False)
        assert np.array_equal(result.parameters, expected_parameters)
        assert result.loss_history == expected_losses

    def test_noise_injected_path_reproducible(self, dataset):
        """The injector path (per-call fallback) stays seed-reproducible."""
        features, labels = dataset
        config = TrainConfig(epochs=1, batch_size=8, seed=9)
        injector = NoiseInjector(attenuation=np.full(4, 0.9), sigma=0.02)
        first = Trainer(QNNModel.create(4, 16, 4, repeats=1, seed=6), config).train(
            features, labels, noise_injector=injector, update_model=False
        )
        second = Trainer(QNNModel.create(4, 16, 4, repeats=1, seed=6), config).train(
            features, labels, noise_injector=injector, update_model=False
        )
        assert np.array_equal(first.parameters, second.parameters)
        assert first.loss_history == second.loss_history

    def test_float32_batched_step_tracks_float64(self, dataset):
        """One batched loss/gradient step in the fast tier stays within
        tolerance of the float64 reference (full training runs diverge
        chaotically under Adam, so the pin is on the step, not the run)."""
        features, labels = dataset
        model = QNNModel.create(4, 16, 4, repeats=1, seed=8)
        [(exact_loss, exact_gradient)] = model.loss_and_gradient_batch(
            features[:8], labels[:8], [None],
            backend=StatevectorBackend(engine=SimulationEngine()),
        )
        [(fast_loss, fast_gradient)] = model.loss_and_gradient_batch(
            features[:8], labels[:8], [None],
            backend=StatevectorBackend(engine=SimulationEngine(dtype="float32")),
        )
        assert abs(fast_loss - exact_loss) < 1e-4
        np.testing.assert_allclose(fast_gradient, exact_gradient, atol=1e-4)


class TestZDiagonalCache:
    def test_builds_count_distinct_keys_only(self):
        clear_z_diagonal_cache()
        for _ in range(3):
            for qubit in range(4):
                z_diagonal(qubit, 4)
        info = z_diagonal_cache_info()
        assert info["builds"] == 4
        assert info["entries"] == 4
        z_diagonal(0, 5)
        assert z_diagonal_cache_info()["builds"] == 5

    def test_cached_arrays_are_read_only_and_correct(self):
        clear_z_diagonal_cache()
        diag = z_diagonal(1, 3)
        assert not diag.flags.writeable
        with pytest.raises(ValueError):
            diag[0] = 0.0
        expected = np.array([1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0])
        assert np.array_equal(diag, expected)
        assert z_diagonal(1, 3) is diag

    def test_gradient_calls_reuse_cached_diagonals(self, dataset):
        features, labels = dataset
        model = QNNModel.create(4, 16, 4, repeats=1, seed=12)
        clear_z_diagonal_cache()
        model.loss_and_gradient(features[:8], labels[:8])
        builds_after_first = z_diagonal_cache_info()["builds"]
        assert builds_after_first == model.num_classes
        model.loss_and_gradient(features[8:16], labels[8:16])
        model.loss_and_gradient_batch(features[:8], labels[:8], [None, None])
        assert z_diagonal_cache_info()["builds"] == builds_after_first
