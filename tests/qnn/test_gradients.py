"""Tests for the adjoint and parameter-shift gradient engines."""

import numpy as np
import pytest

from repro.circuits import build_qucad_ansatz, build_two_parameter_vqc
from repro.exceptions import TrainingError
from repro.qnn import (
    QNNModel,
    adjoint_gradient,
    cross_entropy_loss,
    finite_difference_gradient,
    parameter_shift_gradient,
    shift_rules_for_circuit,
    z_diagonal,
)
from repro.simulator import StatevectorSimulator


def test_z_diagonal_values():
    diag = z_diagonal(0, 2)
    assert np.allclose(diag, [1, 1, -1, -1])
    diag = z_diagonal(1, 2)
    assert np.allclose(diag, [1, -1, 1, -1])


def test_shift_rules_for_qucad_ansatz():
    ansatz = build_qucad_ansatz(4, repeats=1)
    rules = shift_rules_for_circuit(ansatz)
    assert len(rules) == ansatz.num_parameters
    assert rules.count("four_term") == 16  # the controlled-rotation layers
    assert rules.count("two_term") == 24


def test_adjoint_matches_finite_difference_on_expectation():
    circuit = build_two_parameter_vqc()
    simulator = StatevectorSimulator(2)
    initial = simulator.zero_state(1)
    observable = z_diagonal(0, 2)[None, :]
    parameters = np.array([0.7, -0.4])

    gradient, final_states = adjoint_gradient(circuit, parameters, initial, observable)

    def expectation(p):
        result = simulator.run(circuit.bind_parameters(p), initial_states=initial)
        return float(result.expectation_z([0])[0, 0])

    numerical = finite_difference_gradient(expectation, parameters)
    assert np.allclose(gradient, numerical, atol=1e-6)
    assert np.allclose(np.abs(final_states[0]) ** 2,
                       simulator.run(circuit.bind_parameters(parameters), initial_states=initial).probabilities()[0])


def test_adjoint_matches_finite_difference_on_full_loss():
    model = QNNModel.create(4, 16, 4, repeats=1, seed=2)
    rng = np.random.default_rng(0)
    features = rng.uniform(size=(5, 16))
    labels = rng.integers(0, 4, size=5)
    _, analytic = model.loss_and_gradient(features, labels)

    def loss_fn(p):
        return cross_entropy_loss(model.forward_ideal(features, parameters=p), labels)[0]

    numerical = finite_difference_gradient(loss_fn, model.parameters)
    assert np.allclose(analytic, numerical, atol=1e-6)


def test_parameter_shift_matches_finite_difference_for_controlled_rotation():
    model = QNNModel.create(2, 2, 2, repeats=1, seed=4)
    features = np.array([[0.3, 0.8]])
    rules = shift_rules_for_circuit(model.ansatz)

    def expectation(p):
        return float(model.ideal_expectations(features, parameters=p)[0, 0])

    analytic = parameter_shift_gradient(expectation, model.parameters, rules)
    numerical = finite_difference_gradient(expectation, model.parameters)
    assert np.allclose(analytic, numerical, atol=1e-6)


def test_parameter_shift_validates_rule_count():
    with pytest.raises(TrainingError):
        parameter_shift_gradient(lambda p: 0.0, np.zeros(3), ["two_term"])


def test_parameter_shift_rejects_unknown_rule():
    with pytest.raises(TrainingError):
        parameter_shift_gradient(lambda p: 0.0, np.zeros(1), ["three_term"])


def test_adjoint_batch_mismatch_raises():
    circuit = build_two_parameter_vqc()
    simulator = StatevectorSimulator(2)
    with pytest.raises(TrainingError):
        adjoint_gradient(circuit, np.zeros(2), simulator.zero_state(2), np.ones((1, 4)))
