"""Tests for the dataset loaders and the shared Dataset container."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    generate_mnist4_samples,
    generate_seismic_samples,
    load_dataset,
    load_iris,
    load_mnist4,
    load_seismic,
    minmax_normalize,
    synthesize_trace,
    train_test_split,
    windowed_log_energy,
)
from repro.exceptions import DatasetError


# ---------------------------------------------------------------------------
# Container and helpers
# ---------------------------------------------------------------------------
def test_dataset_validation():
    with pytest.raises(DatasetError):
        Dataset("bad", np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1), 2)
    with pytest.raises(DatasetError):
        Dataset("bad", np.zeros((3, 2)), np.zeros(3), np.zeros((1, 3)), np.zeros(1), 2)
    with pytest.raises(DatasetError):
        Dataset("bad", np.zeros((3, 2)), np.zeros(3), np.zeros((1, 2)), np.zeros(1), 1)


def test_minmax_normalize_range():
    data = np.array([[1.0, 10.0], [3.0, 10.0], [5.0, 10.0]])
    normalized = minmax_normalize(data)
    assert normalized.min() == 0.0
    assert normalized.max() == 1.0
    assert np.allclose(normalized[:, 1], 0.0)  # constant column maps to 0


def test_train_test_split_sizes_and_disjointness():
    features = np.arange(20).reshape(10, 2).astype(float)
    labels = np.arange(10) % 2
    train_x, train_y, test_x, test_y = train_test_split(features, labels, 0.7, seed=0)
    assert train_x.shape[0] == 7 and test_x.shape[0] == 3
    train_rows = {tuple(row) for row in train_x}
    test_rows = {tuple(row) for row in test_x}
    assert not train_rows & test_rows
    with pytest.raises(DatasetError):
        train_test_split(features, labels, 1.5)


def test_subsample_is_stratified_and_bounded():
    dataset = load_mnist4(num_samples=200, seed=0)
    small = dataset.subsample(num_train=40, num_test=20, seed=1)
    assert small.num_train == 40
    assert small.num_test == 20
    # Every class keeps at least one representative.
    assert set(np.unique(small.train_labels)) == {0, 1, 2, 3}
    # Requesting more samples than available is a no-op.
    same = dataset.subsample(num_train=10_000, seed=1)
    assert same.num_train == dataset.num_train


# ---------------------------------------------------------------------------
# MNIST-4
# ---------------------------------------------------------------------------
def test_mnist4_shapes_and_ranges():
    dataset = load_mnist4(num_samples=200, seed=3)
    assert dataset.num_features == 16
    assert dataset.num_classes == 4
    assert dataset.train_features.min() >= 0.0
    assert dataset.train_features.max() <= 1.0
    assert set(np.unique(dataset.train_labels)) <= {0, 1, 2, 3}


def test_mnist4_determinism():
    first_x, first_y = generate_mnist4_samples(50, seed=11)
    second_x, second_y = generate_mnist4_samples(50, seed=11)
    other_x, _ = generate_mnist4_samples(50, seed=12)
    assert np.allclose(first_x, second_x)
    assert np.array_equal(first_y, second_y)
    assert not np.allclose(first_x, other_x)


def test_mnist4_classes_are_linearly_separable_enough():
    """Class prototypes must be distinguishable: nearest-prototype accuracy
    should be well above chance."""
    from repro.datasets.mnist4 import DIGIT_PROTOTYPES, MNIST4_DIGITS

    features, labels = generate_mnist4_samples(200, seed=5)
    prototypes = np.stack([DIGIT_PROTOTYPES[d].reshape(-1) for d in MNIST4_DIGITS])
    predictions = np.argmin(
        np.linalg.norm(features[:, None, :] - prototypes[None, :, :], axis=2), axis=1
    )
    assert np.mean(predictions == labels) > 0.8


def test_mnist4_rejects_bad_sample_count():
    with pytest.raises(DatasetError):
        generate_mnist4_samples(0)


# ---------------------------------------------------------------------------
# Seismic
# ---------------------------------------------------------------------------
def test_seismic_shapes_and_balance():
    dataset = load_seismic(num_samples=300, seed=2)
    assert dataset.num_features == 16
    assert dataset.num_classes == 2
    positives = dataset.train_labels.mean()
    assert 0.3 < positives < 0.7


def test_seismic_event_traces_have_more_energy():
    rng = np.random.default_rng(0)
    quiet = np.mean([np.sum(synthesize_trace(rng, False) ** 2) for _ in range(20)])
    loud = np.mean([np.sum(synthesize_trace(rng, True) ** 2) for _ in range(20)])
    assert loud > 1.5 * quiet


def test_windowed_log_energy_shape_and_validation():
    trace = np.ones(256)
    features = windowed_log_energy(trace, num_windows=16)
    assert features.shape == (16,)
    with pytest.raises(DatasetError):
        windowed_log_energy(np.ones(100), num_windows=16)


def test_seismic_determinism():
    first, labels_a = generate_seismic_samples(40, seed=1)
    second, labels_b = generate_seismic_samples(40, seed=1)
    assert np.allclose(first, second)
    assert np.array_equal(labels_a, labels_b)


# ---------------------------------------------------------------------------
# Iris
# ---------------------------------------------------------------------------
def test_iris_shapes():
    dataset = load_iris()
    assert dataset.num_features == 4
    assert dataset.num_classes == 3
    assert dataset.num_train + dataset.num_test == 150


def test_iris_setosa_is_separable():
    """Setosa (class 0) should be nearly perfectly separable by petal length."""
    dataset = load_iris(seed=1)
    features = np.vstack([dataset.train_features, dataset.test_features])
    labels = np.concatenate([dataset.train_labels, dataset.test_labels])
    petal_length = features[:, 2]
    threshold = 0.5 * (petal_length[labels == 0].max() + petal_length[labels != 0].min())
    predictions = (petal_length > threshold).astype(int)
    setosa_detection = np.mean((predictions == 0) == (labels == 0))
    assert setosa_detection > 0.95


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_load_dataset_registry():
    assert load_dataset("mnist4", num_samples=50, seed=0).name == "mnist4"
    assert load_dataset("iris").name == "iris"
    with pytest.raises(DatasetError):
        load_dataset("cifar10")
