"""Tests for the circuit templates (the paper's VQC block)."""

import pytest

from repro.circuits import (
    QUCAD_BLOCK_LAYERS,
    build_hardware_efficient_ansatz,
    build_qucad_ansatz,
    build_two_parameter_vqc,
    parameters_per_block,
    ring_pairs,
)
from repro.exceptions import CircuitError


def test_ring_pairs_wrap_around():
    assert ring_pairs(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]


def test_ring_pairs_two_qubits_degenerates():
    assert ring_pairs(2) == [(0, 1)]


def test_ring_pairs_requires_two_qubits():
    with pytest.raises(CircuitError):
        ring_pairs(1)


def test_parameters_per_block_matches_paper():
    # 6 rotation layers x 4 qubits + 4 entangling layers x 4 pairs = 40.
    assert parameters_per_block(4) == 40


def test_block_layer_structure_matches_paper():
    names = [name for _, name in QUCAD_BLOCK_LAYERS]
    assert names == ["ry", "cry", "ry", "rx", "crx", "rx", "rz", "crz", "rz", "crz"]


def test_qucad_ansatz_two_repeats_has_80_parameters():
    ansatz = build_qucad_ansatz(4, repeats=2)
    assert ansatz.num_parameters == 80
    assert len(ansatz) == 80
    assert all(gate.trainable for gate in ansatz)


def test_qucad_ansatz_iris_configuration():
    ansatz = build_qucad_ansatz(4, repeats=3)
    assert ansatz.num_parameters == 120


def test_qucad_ansatz_unique_param_refs():
    ansatz = build_qucad_ansatz(4, repeats=2)
    refs = [gate.param_ref for gate in ansatz]
    assert len(set(refs)) == len(refs)


def test_qucad_ansatz_rejects_zero_repeats():
    with pytest.raises(CircuitError):
        build_qucad_ansatz(4, repeats=0)


def test_two_parameter_vqc_structure():
    circuit = build_two_parameter_vqc()
    assert circuit.num_parameters == 2
    assert [gate.name for gate in circuit] == ["ry", "ry", "cx"]


def test_two_parameter_vqc_requires_two_qubits():
    with pytest.raises(CircuitError):
        build_two_parameter_vqc(3)


def test_hardware_efficient_ansatz_shape():
    circuit = build_hardware_efficient_ansatz(3, depth=2, rotation="ry")
    assert circuit.num_parameters == 6
    assert circuit.gate_counts()["cx"] == 4


def test_hardware_efficient_ansatz_validation():
    with pytest.raises(CircuitError):
        build_hardware_efficient_ansatz(3, depth=0)
    with pytest.raises(CircuitError):
        build_hardware_efficient_ansatz(3, depth=1, rotation="h")
