"""Tests for the circuit dependency DAG utilities."""

from repro.circuits import (
    QuantumCircuit,
    asap_layers,
    build_dependency_dag,
    build_qucad_ansatz,
    critical_path_length,
)


def _sample_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3)
    circuit.h(0).h(1).cx(0, 1).cx(1, 2).x(0)
    return circuit


def test_dag_has_one_node_per_gate():
    circuit = _sample_circuit()
    dag = build_dependency_dag(circuit)
    assert dag.number_of_nodes() == len(circuit)


def test_dag_edges_follow_shared_qubits():
    circuit = _sample_circuit()
    dag = build_dependency_dag(circuit)
    # Gate 2 (cx 0,1) depends on both Hadamards.
    assert dag.has_edge(0, 2)
    assert dag.has_edge(1, 2)
    # Gate 4 (x on qubit 0) depends on gate 2, not on gate 3.
    assert dag.has_edge(2, 4)
    assert not dag.has_edge(3, 4)


def test_asap_layers_match_depth():
    circuit = _sample_circuit()
    layers = asap_layers(circuit)
    assert len(layers) == circuit.depth()
    assert sorted(sum(layers, [])) == list(range(len(circuit)))


def test_layers_have_disjoint_qubits():
    circuit = build_qucad_ansatz(4, repeats=1)
    for layer in asap_layers(circuit):
        used = []
        for index in layer:
            used.extend(circuit.gates[index].qubits)
        assert len(used) == len(set(used))


def test_critical_path_equals_depth():
    circuit = _sample_circuit()
    assert critical_path_length(circuit) == circuit.depth()


def test_empty_circuit_has_zero_depth():
    circuit = QuantumCircuit(2)
    assert critical_path_length(circuit) == 0
    assert asap_layers(circuit) == []
