"""Tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import CircuitError
from repro.gates import Gate


def test_requires_positive_qubit_count():
    with pytest.raises(CircuitError):
        QuantumCircuit(0)


def test_append_validates_qubit_range():
    circuit = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        circuit.add("x", [2])


def test_convenience_builders_append_gates():
    circuit = QuantumCircuit(3)
    circuit.h(0).cx(0, 1).ry(0.5, 2).crz(0.3, 1, 2)
    assert [g.name for g in circuit] == ["h", "cx", "ry", "crz"]
    assert len(circuit) == 4


def test_num_parameters_counts_highest_ref():
    circuit = QuantumCircuit(2)
    circuit.add("ry", [0], param_ref=0, trainable=True)
    circuit.add("ry", [1], param_ref=3, trainable=True)
    assert circuit.num_parameters == 4


def test_bind_parameters_replaces_refs():
    circuit = QuantumCircuit(2)
    circuit.add("ry", [0], param_ref=0, trainable=True)
    circuit.add("crx", [0, 1], param_ref=1, trainable=True)
    bound = circuit.bind_parameters([0.1, 0.2])
    assert bound.gates[0].param == pytest.approx(0.1)
    assert bound.gates[1].param == pytest.approx(0.2)
    # The original circuit remains unbound.
    assert circuit.gates[0].param is None


def test_bind_parameters_rejects_short_vector():
    circuit = QuantumCircuit(1)
    circuit.add("ry", [0], param_ref=2, trainable=True)
    with pytest.raises(CircuitError):
        circuit.bind_parameters([0.1, 0.2])


def test_parameter_values_round_trip():
    circuit = QuantumCircuit(2)
    circuit.add("ry", [0], param_ref=0, trainable=True)
    circuit.add("rz", [1], param_ref=1, trainable=True)
    values = np.array([0.4, -1.2])
    bound = circuit.bind_parameters(values)
    assert np.allclose(bound.parameter_values(), values)


def test_parameter_values_reports_missing_refs():
    circuit = QuantumCircuit(1)
    circuit.add("ry", [0], param_ref=1, param=0.5, trainable=True)
    with pytest.raises(CircuitError):
        circuit.parameter_values()


def test_depth_accounts_for_parallel_gates():
    circuit = QuantumCircuit(3)
    circuit.h(0).h(1).h(2)      # depth 1: all parallel
    circuit.cx(0, 1)            # depth 2
    circuit.cx(1, 2)            # depth 3
    assert circuit.depth() == 3


def test_gate_counts_histogram():
    circuit = QuantumCircuit(2)
    circuit.h(0).h(1).cx(0, 1)
    assert circuit.gate_counts() == {"h": 2, "cx": 1}
    assert circuit.count_two_qubit_gates() == 1


def test_compose_concatenates_gates():
    first = QuantumCircuit(2)
    first.h(0)
    second = QuantumCircuit(2)
    second.cx(0, 1)
    combined = first.compose(second)
    assert [g.name for g in combined] == ["h", "cx"]
    assert len(first) == 1


def test_compose_rejects_larger_circuit():
    small = QuantumCircuit(1)
    big = QuantumCircuit(3)
    with pytest.raises(CircuitError):
        small.compose(big)


def test_remap_qubits_relabels():
    circuit = QuantumCircuit(2)
    circuit.cx(0, 1)
    remapped = circuit.remap_qubits({0: 4, 1: 2}, num_qubits=5)
    assert remapped.gates[0].qubits == (4, 2)
    assert remapped.num_qubits == 5


def test_copy_is_independent():
    circuit = QuantumCircuit(1)
    circuit.h(0)
    duplicate = circuit.copy()
    duplicate.x(0)
    assert len(circuit) == 1
    assert len(duplicate) == 2


def test_trainable_and_parametric_gate_views():
    circuit = QuantumCircuit(2)
    circuit.add("ry", [0], param_ref=0, trainable=True)
    circuit.add("rz", [1], param=0.3)
    circuit.cx(0, 1)
    assert len(circuit.parametric_gates) == 2
    assert len(circuit.trainable_gates) == 1


def test_qubit_association_matches_gate_order():
    circuit = QuantumCircuit(3)
    circuit.h(1).cx(0, 2)
    assert circuit.qubit_association() == [(1,), (0, 2)]
