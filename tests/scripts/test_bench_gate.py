"""Pinning tests for the CI benchmark gate (``scripts/bench_gate.py``).

The gate must fail *loudly* — naming the offending artifact and floor key —
for every malformed-input shape CI can produce: a missing artifact, a
typo'd floor key, and a floor key that resolves to a sub-dict or string
instead of a ratio (which used to crash ``float(measured)`` with a
traceback instead of a verdict).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    Path(__file__).resolve().parents[2] / "scripts" / "bench_gate.py",
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


@pytest.fixture()
def gate_dir(tmp_path):
    """A floors file and matching artifact that pass the gate."""
    artifact = {"multi_day": {"batched_speedup": 1.4, "note": "warm run"}}
    (tmp_path / "BENCH_runtime.json").write_text(json.dumps(artifact))
    floors = {
        "_comment": "ignored",
        "BENCH_runtime.json": {"multi_day.batched_speedup": 1.05},
    }
    floors_path = tmp_path / "bench_floors.json"
    floors_path.write_text(json.dumps(floors))
    return tmp_path, floors_path


def _run(tmp_path, floors_path):
    return bench_gate.main(
        ["--floors", str(floors_path), "--artifact-dir", str(tmp_path)]
    )


def test_gate_passes_on_healthy_artifacts(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    assert _run(tmp_path, floors_path) == 0
    assert "bench gate passed" in capsys.readouterr().out


def test_missing_artifact_fails_with_hint(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    (tmp_path / "BENCH_runtime.json").unlink()
    assert _run(tmp_path, floors_path) == 1
    assert "artifact missing" in capsys.readouterr().err


def test_typoed_floor_key_fails_instead_of_passing_silently(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    floors_path.write_text(
        json.dumps({"BENCH_runtime.json": {"multi_day.batched_speedupp": 1.05}})
    )
    assert _run(tmp_path, floors_path) == 1
    assert "'multi_day.batched_speedupp' missing" in capsys.readouterr().err


def test_floor_key_resolving_to_subdict_fails_without_crashing(gate_dir, capsys):
    """A dotted path stopping one level short lands on a dict; the gate
    must report it as a bad key, not die in ``float(measured)``."""
    tmp_path, floors_path = gate_dir
    floors_path.write_text(json.dumps({"BENCH_runtime.json": {"multi_day": 1.05}}))
    assert _run(tmp_path, floors_path) == 1
    err = capsys.readouterr().err
    assert "resolves to dict" in err
    assert "multi_day" in err


def test_floor_key_resolving_to_string_fails_without_crashing(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    floors_path.write_text(
        json.dumps({"BENCH_runtime.json": {"multi_day.note": 1.05}})
    )
    assert _run(tmp_path, floors_path) == 1
    assert "resolves to str" in capsys.readouterr().err


def test_non_numeric_floor_value_fails_without_crashing(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    floors_path.write_text(
        json.dumps({"BENCH_runtime.json": {"multi_day.batched_speedup": "1.05"}})
    )
    assert _run(tmp_path, floors_path) == 1
    assert "floor for 'multi_day.batched_speedup' is str" in capsys.readouterr().err


def test_below_floor_reports_measured_and_floor(gate_dir, capsys):
    tmp_path, floors_path = gate_dir
    floors_path.write_text(
        json.dumps({"BENCH_runtime.json": {"multi_day.batched_speedup": 2.5}})
    )
    assert _run(tmp_path, floors_path) == 1
    err = capsys.readouterr().err
    assert "below floor 2.50" in err
    assert "1.40" in err
