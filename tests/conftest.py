"""Shared fixtures for the test suite.

Fixtures are deliberately tiny (few qubits, few samples, few days) so the
whole suite stays fast while still exercising the real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import (
    CalibrationSnapshot,
    belem_backend,
    generate_belem_history,
)
from repro.circuits import build_qucad_ansatz
from repro.datasets import load_mnist4
from repro.qnn import QNNModel
from repro.transpiler import belem_coupling


@pytest.fixture(scope="session")
def coupling():
    """The belem coupling map used by most transpiler tests."""
    return belem_coupling()


@pytest.fixture(scope="session")
def backend():
    return belem_backend()


@pytest.fixture(scope="session")
def history():
    """A short deterministic calibration history."""
    return generate_belem_history(12, seed=123)


@pytest.fixture(scope="session")
def calibration(history) -> CalibrationSnapshot:
    """One calibration snapshot."""
    return history[0]


@pytest.fixture(scope="session")
def small_dataset():
    """A small MNIST-4 dataset (fast to evaluate)."""
    return load_mnist4(num_samples=120, seed=5)


@pytest.fixture()
def ansatz():
    """A single-block QuCAD ansatz on 4 qubits (40 parameters)."""
    return build_qucad_ansatz(4, repeats=1)


@pytest.fixture()
def model(coupling, calibration) -> QNNModel:
    """A small untrained model bound to the belem device."""
    qnn = QNNModel.create(
        num_qubits=4, num_features=16, num_classes=4, repeats=1, seed=11
    )
    qnn.bind_to_device(coupling, calibration=calibration)
    return qnn


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
