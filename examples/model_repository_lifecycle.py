"""Lifecycle of the model repository: offline clustering, online matching.

Demonstrates the Section III-C/III-D machinery directly (without the QuCAD
facade): measuring per-day accuracy, clustering calibrations with the
performance-weighted L1 distance, compressing one model per centroid, and
then serving models online — including the failure report of Guidance 2 when
the user's accuracy requirement cannot be met.
"""

from __future__ import annotations

import numpy as np

from repro.calibration import generate_belem_history
from repro.core import (
    CompressionConfig,
    NoiseAwareCompressor,
    RepositoryConstructor,
    RepositoryManager,
    train_noise_free,
)
from repro.datasets import load_mnist4
from repro.qnn import QNNModel, TrainConfig
from repro.transpiler import belem_coupling


def main() -> None:
    coupling = belem_coupling()
    history = generate_belem_history(num_days=60, seed=5)
    offline_history, online_history = history.split(45)
    dataset = load_mnist4(num_samples=300, seed=7)

    model = QNNModel.create(4, 16, 4, repeats=2, seed=3)
    model.bind_to_device(coupling, calibration=history[0])
    train_noise_free(
        model,
        dataset.train_features[:192],
        dataset.train_labels[:192],
        TrainConfig(epochs=20, learning_rate=0.1, seed=0),
    )

    compressor = NoiseAwareCompressor(
        CompressionConfig(admm_iterations=2, theta_epochs=1, finetune_epochs=3)
    )
    constructor = RepositoryConstructor(
        compressor=compressor,
        num_clusters=4,
        accuracy_requirement=0.40,
        eval_test_samples=48,
        train_samples=96,
        seed=0,
    )
    report = constructor.build(model, dataset, offline_history)
    print(f"offline: {len(offline_history)} days clustered into "
          f"{report.clustering.num_clusters} groups, threshold th_w = "
          f"{report.repository.threshold:.4f}")
    for entry in report.repository.entries:
        print(f"  {entry.label}: cluster accuracy {entry.mean_accuracy:.3f}, "
              f"valid={entry.valid}")

    train_subset = dataset.subsample(num_train=96, seed=0)
    manager = RepositoryManager(
        repository=report.repository,
        compressor=compressor,
        model=model,
        train_features=train_subset.train_features,
        train_labels=train_subset.train_labels,
        accuracy_requirement=0.40,
    )
    print("\nonline adaptation:")
    for snapshot in online_history:
        decision = manager.adapt(snapshot)
        message = f"  {snapshot.date}: {decision.action:9s}"
        if decision.distance is not None:
            message += f" (distance {decision.distance:.4f} vs threshold {decision.threshold:.4f})"
        if decision.failure_report:
            message += "  ! " + decision.failure_report
        print(message)
    stats = manager.stats
    print(f"\n{stats.steps} days served with only {stats.optimizations} online "
          f"compressions ({stats.reuses} reuses, {stats.invalid_matches} failure reports)")


if __name__ == "__main__":
    main()
