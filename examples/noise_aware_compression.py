"""Anatomy of one noise-aware compression run (the Section III-B algorithm).

Shows the pieces that make up the ADMM compression on a single high-noise
day: the compression table, the priority mask (noise / distance), the
physical-circuit-length reduction, and the accuracy before/after adaptation.
"""

from __future__ import annotations

import numpy as np

from repro.calibration import generate_belem_history
from repro.core import (
    CompressionConfig,
    CompressionTable,
    NoiseAgnosticCompressor,
    NoiseAwareCompressor,
    train_noise_free,
)
from repro.core.masks import build_mask, gate_noise_rates
from repro.datasets import load_mnist4
from repro.qnn import QNNModel, TrainConfig, evaluate_noisy
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


def main() -> None:
    coupling = belem_coupling()
    history = generate_belem_history(num_days=150, seed=2021)
    dataset = load_mnist4(num_samples=400, seed=7)

    # Base model trained in a perfect environment.
    model = QNNModel.create(4, 16, 4, repeats=2, seed=3)
    model.bind_to_device(coupling, calibration=history[0])
    train_noise_free(
        model,
        dataset.train_features[:256],
        dataset.train_labels[:256],
        TrainConfig(epochs=25, learning_rate=0.1, seed=0),
    )

    # Pick the noisiest day of the history as the adaptation target.
    totals = history.to_matrix().sum(axis=1)
    worst_day = int(np.argmax(totals))
    calibration = history[worst_day]
    print(f"adapting to {calibration.date} (highest total error in the history)")
    print("calibration summary:", {k: round(v, 4) for k, v in calibration.summary().items()})

    # The tables behind the noise-aware mask (Fig. 6).
    table = CompressionTable()
    noise = gate_noise_rates(model.num_parameters, model.transpiled.ref_physical_qubits, calibration)
    tables = build_mask(model.parameters, table, noise=noise, target_fraction=0.6)
    print(f"mask selects {tables.num_compressed}/{model.num_parameters} parameters; "
          f"priority range [{tables.priority.min():.3f}, {tables.priority.max():.3f}]")

    # Full ADMM compression: noise-aware vs noise-agnostic.
    config = CompressionConfig(admm_iterations=3, theta_epochs=2, finetune_epochs=6, target_fraction=0.6)
    aware = NoiseAwareCompressor(config).compress(
        model, dataset.train_features[:160], dataset.train_labels[:160], calibration=calibration
    )
    agnostic = NoiseAgnosticCompressor(config).compress(
        model, dataset.train_features[:160], dataset.train_labels[:160]
    )
    print(f"physical length: original {aware.physical_length_before}, "
          f"noise-aware compressed {aware.physical_length_after}, "
          f"noise-agnostic compressed {agnostic.physical_length_after}")

    # Accuracy under the worst day's noise.
    eval_set = dataset.subsample(num_test=96, seed=0)
    noise_model = NoiseModel.from_calibration(calibration)
    results = {
        "original model": model.parameters,
        "noise-agnostic compression": agnostic.parameters,
        "noise-aware compression": aware.parameters,
    }
    for label, parameters in results.items():
        accuracy = evaluate_noisy(
            model, eval_set.test_features, eval_set.test_labels, noise_model,
            parameters=parameters, shots=1024, seed=1,
        ).accuracy
        print(f"  {label:28s} accuracy {accuracy:.3f}")


if __name__ == "__main__":
    main()
