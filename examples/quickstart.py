"""Quickstart: train a QNN, watch fluctuating noise break it, fix it with QuCAD.

Runs in a couple of minutes on a laptop.  The flow mirrors the paper:

1. generate a synthetic belem-like calibration history (offline + online days),
2. train the 4-qubit QNN of the paper on the MNIST-4 task in a noise-free
   environment,
3. evaluate it under each online day's noise model — accuracy collapses on
   high-noise days,
4. build the QuCAD repository offline and adapt online — accuracy recovers
   with almost no online optimization.
"""

from __future__ import annotations

import numpy as np

from repro.core import QuCAD, QuCADConfig, CompressionConfig, train_noise_free
from repro.calibration import generate_belem_history
from repro.datasets import load_mnist4
from repro.qnn import QNNModel, TrainConfig, evaluate_ideal, evaluate_noisy
from repro.simulator import NoiseModel
from repro.transpiler import belem_coupling


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Device and one year of fluctuating calibrations (shortened here).
    coupling = belem_coupling()
    history = generate_belem_history(num_days=80, seed=2021)
    offline_history, online_history = history.split(56)

    # 2. Dataset and base model (the paper's 2-block VQC on 4 qubits).
    dataset = load_mnist4(num_samples=400, seed=7)
    model = QNNModel.create(num_qubits=4, num_features=16, num_classes=4, repeats=2, seed=3)
    model.bind_to_device(coupling, calibration=history[0])
    train_noise_free(
        model,
        dataset.train_features[:256],
        dataset.train_labels[:256],
        TrainConfig(epochs=25, learning_rate=0.1, seed=0),
    )
    ideal = evaluate_ideal(model, dataset.test_features, dataset.test_labels).accuracy
    print(f"noise-free test accuracy: {ideal:.3f}")

    # 3. The same fixed model under each online day's noise.
    eval_set = dataset.subsample(num_test=64, seed=0)
    baseline_accuracy = []
    for day, snapshot in enumerate(online_history):
        noise = NoiseModel.from_calibration(snapshot)
        accuracy = evaluate_noisy(
            model, eval_set.test_features, eval_set.test_labels, noise,
            shots=1024, seed=int(rng.integers(2**31)),
        ).accuracy
        baseline_accuracy.append(accuracy)
    baseline_accuracy = np.array(baseline_accuracy)
    print(
        f"fixed model under fluctuating noise: mean {baseline_accuracy.mean():.3f}, "
        f"worst day {baseline_accuracy.min():.3f}"
    )

    # 4. QuCAD: offline repository + online adaptation.
    qucad = QuCAD(
        model,
        dataset,
        coupling,
        config=QuCADConfig(
            compression=CompressionConfig(admm_iterations=2, theta_epochs=2, finetune_epochs=4),
            num_clusters=4,
            eval_test_samples=64,
            train_samples=128,
            seed=0,
        ),
    )
    qucad.offline(offline_history)
    print(f"offline repository built with {len(qucad.repository)} compressed models")

    adapted_accuracy = []
    for day, snapshot in enumerate(online_history):
        decision = qucad.online(snapshot)
        noise = NoiseModel.from_calibration(snapshot)
        accuracy = evaluate_noisy(
            model, eval_set.test_features, eval_set.test_labels, noise,
            parameters=decision.parameters, shots=1024, seed=int(rng.integers(2**31)),
        ).accuracy
        adapted_accuracy.append(accuracy)
    adapted_accuracy = np.array(adapted_accuracy)
    stats = qucad.manager.stats
    print(
        f"QuCAD under the same noise: mean {adapted_accuracy.mean():.3f}, "
        f"worst day {adapted_accuracy.min():.3f}"
    )
    print(
        f"online optimizations: {stats.optimizations} (reused stored models on "
        f"{stats.reuses} of {stats.steps} days)"
    )


if __name__ == "__main__":
    main()
