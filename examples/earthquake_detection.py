"""Earthquake detection on a 7-qubit jakarta-like device (the Fig. 8 scenario).

Trains the binary seismic-event classifier, then compares three deployment
strategies over several "rounds" (different calibration days) on an emulated
ibm-jakarta backend with finite measurement shots:

* the noise-free-trained baseline,
* noise-aware training on the first round's calibration,
* QuCAD (offline repository + online adaptation).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import make_method
from repro.experiments import ExperimentScale, prepare_experiment, run_longitudinal


def main() -> None:
    scale = ExperimentScale(
        offline_days=16,
        online_days=5,          # the five rounds of Fig. 8
        dataset_samples=500,
        train_samples=128,
        eval_samples=64,
        base_train_epochs=20,
        retrain_epochs=5,
        shots=1024,
        num_clusters=4,
        seed=11,
    )
    setup = prepare_experiment("seismic", scale=scale, device="jakarta")
    methods = [
        make_method("baseline"),
        make_method("noise_aware_train_once"),
        make_method("qucad"),
    ]
    result = run_longitudinal(setup, methods, num_days=scale.online_days)

    print("accuracy per round on the jakarta-like device (1024 shots):")
    for run in result.runs:
        rounds = "  ".join(f"{a:.3f}" for a in run.daily_accuracy)
        print(f"  {run.method_name:26s} {rounds}   mean {run.mean_accuracy:.3f}")
    qucad = result.run_for("qucad")
    baseline = result.run_for("baseline")
    print(
        f"\nQuCAD gain over the baseline: "
        f"{100 * (qucad.mean_accuracy - baseline.mean_accuracy):.2f} percentage points"
    )


if __name__ == "__main__":
    main()
